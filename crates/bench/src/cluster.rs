//! Fleet-scale cluster simulation behind one unified run API.
//!
//! The paper evaluates one accelerator; a serving fleet fronts N of them
//! with a router that decides, per arriving job, *which* device runs it —
//! or whether any device can still make the deadline at all. This module
//! generalizes the paper's command-processor admission test to that front
//! door:
//!
//! * [`ClusterScenario`] — the cluster experiment cell (routing policy ×
//!   benchmark × arrival rate × device count × job count × seed), with the
//!   same lossless string round trip as [`crate::sweep::Scenario`].
//! * [`ClusterBuilder`] — mirrors `gpu_sim`'s `SimBuilder`: fidelity tier,
//!   per-device scheduler, slot count, jitter, worker count, probe
//!   observers; [`ClusterBuilder::run`] produces a [`ClusterReport`].
//! * Devices execute on the sweep engine's [`crate::sweep::par_map`] pool.
//!   Per-device RNG seeds hash from the workload cell and device index —
//!   never the routing policy — so policy comparisons are paired and the
//!   report is bit-identical for any worker count.
//! * Latency tails stream through [`StreamingQuantiles`] (p50/p99/p999),
//!   merged across devices in device-index order, so a million-job run
//!   reports SLO attainment without holding a million samples.
//! * [`ClusterCheckpoint`] persists finished cells (summary + sketch) with
//!   the same crash-safe atomic-rename discipline as [`crate::Checkpoint`],
//!   so an interrupted grid resumes byte-identically.
//!
//! # Fidelity tiers
//!
//! The **fast** tier (default) runs each device as the calibrated queueing
//! model in [`gpu_sim::fleet`]; a 16-device, million-job grid completes in
//! seconds. The **detailed** tier materializes every routed job's kernel
//! chain and runs a full [`gpu_sim::sim::Simulation`] per device under a
//! registry scheduler (default LAX) — used for smokes and fidelity
//! cross-checks at small job counts.
//!
//! # Failure domains
//!
//! A [`FleetFaultPlan`] (from [`ClusterScenario::fault_seed`] at intensity
//! `:fI`, or injected via [`ClusterBuilder::fleet_faults`]) switches
//! [`ClusterBuilder::run`] to the chaos engine: one time-ordered pass
//! interleaving fault transitions, arrivals and deadline-aware retries.
//! Crashes lose in-flight work (recovered through the front door while
//! some survivor's predicted laxity admits it, bounded by
//! [`ClusterBuilder::retry_budget`]); drains stop new placements; straggler
//! windows stretch service; correlated outages down whole device blocks.
//! Every job ends completed, rejected, shed or lost, and the probe bus
//! narrates `DeviceDown`/`DeviceRestored`/`JobRetried`/`JobShed`. A no-op
//! plan is bit-identical to the fault-free path, and reports remain
//! bit-identical for any worker count.
//!
//! # Observability
//!
//! Both run paths narrate themselves over the probe bus: routing verdicts
//! live in arrival order, then — after devices execute — one
//! `JobCompleted` per finished job and exactly one `JobMissed` (typed by
//! [`MissCause`]) per job that did not make its deadline, merged into one
//! stream sorted by instant and job id so the delivery order is
//! independent of worker count. [`FleetSampler`] turns the stream into
//! windowed SLO time series and [`FleetTraceWriter`] into Perfetto traces
//! (the `fleet-trace` binary). The [`ClusterReport::misses`] breakdown is
//! computed on every run — observed or not — and conserves exactly against
//! the report's totals; attaching observers never changes any report byte.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;

use gpu_sim::fleet::FleetFaultAction;
use gpu_sim::prelude::*;
use schedulers::registry;
use schedulers::routing::{self, RouteDecision, RouteRequest, Router};
use sim_core::rng::SimRng;
use sim_core::stats::StreamingQuantiles;
use sim_core::table::Table;
use workloads::dag::{fanout_graph, ipa_graph, sample_fanout_width, IPA_WIDTH};
use workloads::rnn::{build_chain, sample_seq_len, Hidden, RnnCell};
use workloads::spec::{ArrivalRate, Benchmark, ParseSpecError};
use workloads::suite::BenchmarkSuite;

use crate::sweep::{default_jobs, par_map, BenchError, SharedObserver};

/// One cluster experiment cell: a routing policy placing an open-loop
/// arrival stream across `devices` accelerators. Self-describing, totally
/// ordered, and stringifiable for CLIs — the cluster counterpart of
/// [`crate::sweep::Scenario`].
///
/// # Examples
///
/// ```
/// use lax_bench::cluster::ClusterScenario;
/// use workloads::spec::{ArrivalRate, Benchmark};
///
/// let s = ClusterScenario::new("LL", Benchmark::Hybrid, ArrivalRate::High, 16, 1_000_000, 42);
/// assert_eq!(s.to_string(), "LL:HYBRID:high:d16:j1000000:s42");
/// assert_eq!("LL:HYBRID:high:d16:j1000000:s42".parse::<ClusterScenario>().unwrap(), s);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterScenario {
    /// Routing policy name (see [`schedulers::routing`]). Must not contain
    /// `':'`, the string-form separator.
    pub policy: String,
    /// Benchmark every job is drawn from.
    pub bench: Benchmark,
    /// Per-device arrival-rate level; the cluster stream runs at
    /// `devices ×` the Table 4 rate, so per-device load is comparable to
    /// the single-device experiments.
    pub rate: ArrivalRate,
    /// Number of devices behind the router (≥ 1).
    pub devices: usize,
    /// Jobs in the arrival stream.
    pub n_jobs: usize,
    /// Base RNG seed; the workload stream uses [`ClusterScenario::cell_seed`].
    pub seed: u64,
    /// Fleet-fault intensity in milli-units (`1000` = intensity 1.0),
    /// stored fixed-point so the scenario stays totally ordered and
    /// hashable. `0` (the default) injects nothing and is omitted from the
    /// string form, so fault-free scenario strings are unchanged.
    pub fault_milli: u32,
}

impl ClusterScenario {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `policy` contains `':'` (which would break the string
    /// round trip) or if `devices` is zero.
    pub fn new(
        policy: &str,
        bench: Benchmark,
        rate: ArrivalRate,
        devices: usize,
        n_jobs: usize,
        seed: u64,
    ) -> Self {
        assert!(
            !policy.contains(':'),
            "policy name {policy:?} contains ':', the ClusterScenario string-form separator"
        );
        assert!(devices > 0, "a cluster needs at least one device");
        ClusterScenario { policy: policy.to_string(), bench, rate, devices, n_jobs, seed, fault_milli: 0 }
    }

    /// The same cell with a fleet-fault intensity (in milli-units; `1000` =
    /// intensity 1.0). String form gains a `:fI` suffix when non-zero.
    pub fn with_fault_milli(mut self, fault_milli: u32) -> Self {
        self.fault_milli = fault_milli;
        self
    }

    /// Fleet-fault intensity as the float [`gpu_sim::fleet::FleetFaultPlan::seeded`]
    /// consumes.
    pub fn fault_intensity(&self) -> f64 {
        f64::from(self.fault_milli) / 1000.0
    }

    /// The seed feeding the cluster workload generator: an FNV-1a hash of
    /// the base seed and the workload-identifying fields. The routing
    /// policy is deliberately **not** mixed in — every policy compared at
    /// one `(bench, rate, devices, n_jobs, seed)` cell must route the
    /// identical arrival stream, or policy comparisons would pick up
    /// sampling noise. The same contract as [`crate::sweep::Scenario::cell_seed`],
    /// lifted to the fleet.
    pub fn cell_seed(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(&self.seed.to_le_bytes());
        h.eat(self.bench.name().as_bytes());
        h.eat(b":");
        h.eat(self.rate.name().as_bytes());
        h.eat(&(self.devices as u64).to_le_bytes());
        h.eat(&(self.n_jobs as u64).to_le_bytes());
        h.finish()
    }

    /// The jitter-stream seed of device `d`: hashed from the cell seed and
    /// the device index, so devices are not clones of each other yet stay
    /// identical across routing policies and worker counts.
    pub fn device_seed(&self, d: usize) -> u64 {
        let mut h = Fnv::new();
        h.eat(&self.cell_seed().to_le_bytes());
        h.eat(b"device");
        h.eat(&(d as u64).to_le_bytes());
        h.finish()
    }

    /// The seed feeding [`gpu_sim::fleet::FleetFaultPlan::seeded`]: hashed
    /// from the cell seed and the fault intensity, never the policy, so
    /// every policy compared at one faulted cell replays the identical
    /// failure schedule against the identical arrival stream. Deliberately
    /// **not** part of [`ClusterScenario::cell_seed`] — arrival streams
    /// must pair across intensities too (intensity 0 vs 2 differ only in
    /// the faults, not the offered load).
    pub fn fault_seed(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(&self.cell_seed().to_le_bytes());
        h.eat(b"fleet-faults");
        h.eat(&u64::from(self.fault_milli).to_le_bytes());
        h.finish()
    }
}

/// Incremental FNV-1a, shared by the cell/device seed derivations.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClusterScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}:d{}:j{}:s{}",
            self.policy, self.bench, self.rate, self.devices, self.n_jobs, self.seed
        )?;
        if self.fault_milli > 0 {
            // f64 Display prints the shortest round-tripping form, so
            // `(printed * 1000).round()` in the parser recovers the exact
            // milli value.
            write!(f, ":f{}", self.fault_intensity())?;
        }
        Ok(())
    }
}

/// Error parsing a [`ClusterScenario`] from its string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseClusterScenarioError {
    input: String,
    reason: String,
}

impl fmt::Display for ParseClusterScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cluster scenario `{}`: {} (expected POLICY:BENCH:RATE:dD:jN:sSEED[:fI], e.g. LL:HYBRID:high:d16:j1000000:s42:f1.5)",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParseClusterScenarioError {}

impl FromStr for ClusterScenario {
    type Err = ParseClusterScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |reason: String| ParseClusterScenarioError { input: s.to_string(), reason };
        let parts: Vec<&str> = s.split(':').collect();
        let (core, fault) = match parts.as_slice() {
            [p @ .., f] if parts.len() == 7 => (p, Some(*f)),
            p => (p, None),
        };
        let [policy, bench, rate, devices, jobs, seed] = core else {
            return Err(bad(format!("{} fields, expected 6 or 7", parts.len())));
        };
        let bench: Benchmark = bench.parse().map_err(|e: ParseSpecError| bad(e.to_string()))?;
        let rate: ArrivalRate = rate.parse().map_err(|e: ParseSpecError| bad(e.to_string()))?;
        let devices: usize = devices
            .strip_prefix('d')
            .and_then(|n| n.parse().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| bad(format!("bad device count `{devices}`")))?;
        let n_jobs = jobs
            .strip_prefix('j')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad(format!("bad job count `{jobs}`")))?;
        let seed = seed
            .strip_prefix('s')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad(format!("bad seed `{seed}`")))?;
        if policy.is_empty() {
            return Err(bad("empty policy name".to_string()));
        }
        let fault_milli = match fault {
            None => 0,
            Some(f) => f
                .strip_prefix('f')
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|&v| v.is_finite() && v > 0.0)
                .map(|v| (v * 1000.0).round())
                .filter(|&m| m <= f64::from(u32::MAX))
                .map(|m| m as u32)
                .filter(|&m| m > 0)
                .ok_or_else(|| bad(format!("bad fault intensity `{f}`")))?,
        };
        Ok(ClusterScenario::new(policy, bench, rate, devices, n_jobs, seed)
            .with_fault_milli(fault_milli))
    }
}

/// What one generated job materializes into, kept symbolic so the fast
/// tier never builds kernel chains and the detailed tier can rebuild the
/// exact chain or graph from the stored parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainSpec {
    /// An RNN chain (`build_chain` parameters).
    Rnn { cell: RnnCell, hidden: Hidden, seq_len: u32 },
    /// The benchmark's single calibrated kernel.
    Single,
    /// The benchmark's kernel DAG at a sampled fan-out width
    /// ([`fanout_graph`] / [`ipa_graph`]).
    Dag { width: u32 },
}

/// One job of the cluster arrival stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClusterJob {
    id: u32,
    arrival: Cycle,
    /// Calibrated isolated service time of the job's chain — what the
    /// router predicts with and what the fast tier serves at.
    service_est: Duration,
    spec: ChainSpec,
}

/// The single calibrated kernel of a few-kernel benchmark.
fn single_kernel_name(bench: Benchmark) -> &'static str {
    match bench {
        Benchmark::Ipv6 => "ipv6",
        Benchmark::Cuckoo => "cuckoo",
        Benchmark::Gmm => "gmm",
        Benchmark::Stem => "stem",
        other => panic!("{other} is a many-kernel benchmark"),
    }
}

/// Stable cache key for an RNN chain variant.
fn variant_key(cell: RnnCell, hidden: Hidden) -> u8 {
    let c = match cell {
        RnnCell::Lstm => 0,
        RnnCell::Gru => 1,
        RnnCell::Vanilla => 2,
    };
    let h = match hidden {
        Hidden::H128 => 0,
        Hidden::H256 => 1,
    };
    c * 2 + h
}

/// Isolated service time of one job: the sum of its kernels' calibrated
/// isolated times for chains (chains execute sequentially), and the
/// critical path of those times for DAGs (parallel arms overlap).
fn chain_service(suite: &BenchmarkSuite, spec: ChainSpec, bench: Benchmark) -> Duration {
    let us = match spec {
        ChainSpec::Single => suite.calibration(single_kernel_name(bench)).measured_us,
        ChainSpec::Rnn { cell, hidden, seq_len } => build_chain(cell, hidden, seq_len, suite)
            .iter()
            .map(|k| suite.calibration(&k.name).measured_us)
            .sum(),
        ChainSpec::Dag { width } => graph_critical_us(suite, &dag_graph(suite, bench, width)),
    };
    Duration::from_us_f64(us)
}

/// Builds the benchmark's kernel DAG at the stored width.
fn dag_graph(suite: &BenchmarkSuite, bench: Benchmark, width: u32) -> JobGraph {
    match bench {
        Benchmark::FanOut => fanout_graph(suite, width as usize),
        Benchmark::Ipa => ipa_graph(suite, width as usize),
        other => panic!("{other} is not a DAG benchmark"),
    }
}

/// Critical path of a graph under calibrated isolated kernel times: the
/// longest finish time over a topological walk, which a chain degenerates
/// to its plain sum.
fn graph_critical_us(suite: &BenchmarkSuite, graph: &JobGraph) -> f64 {
    let stages = graph.stages();
    let mut finish = vec![0.0f64; stages.len()];
    let mut best = 0.0f64;
    for &i in graph.topo_order() {
        let i = i as usize;
        let start = graph
            .preds(i)
            .iter()
            .fold(0.0f64, |acc, &p| acc.max(finish[p as usize]));
        finish[i] = start + suite.calibration(&stages[i].name).measured_us;
        best = best.max(finish[i]);
    }
    best
}

/// Materializes one symbolic job spec as the full [`JobDesc`] the detailed
/// tier simulates: the stored chain parameters, or the benchmark's DAG at
/// the stored width.
fn materialize_job(
    suite: &BenchmarkSuite,
    bench: Benchmark,
    spec: ChainSpec,
    id: u32,
    deadline: Duration,
    arrival: Cycle,
) -> JobDesc {
    let label = job_label(bench, spec);
    match spec {
        ChainSpec::Single => JobDesc::chain(
            JobId(id),
            label,
            vec![suite.calibration(single_kernel_name(bench)).desc.clone()],
            deadline,
            arrival,
        ),
        ChainSpec::Rnn { cell, hidden, seq_len } => JobDesc::chain(
            JobId(id),
            label,
            build_chain(cell, hidden, seq_len, suite),
            deadline,
            arrival,
        ),
        ChainSpec::Dag { width } => JobDesc::from_graph(
            JobId(id),
            label,
            dag_graph(suite, bench, width),
            deadline,
            arrival,
        ),
    }
    .expect("calibrated specs materialize into valid jobs")
}

/// Generates the cluster arrival stream: `n_jobs` open-loop arrivals at
/// `devices ×` the benchmark's Table 4 rate, each with a calibrated
/// service estimate. Seeded by [`ClusterScenario::cell_seed`] only — the
/// routing policy never perturbs the stream.
fn generate_cluster_jobs(scenario: &ClusterScenario, suite: &BenchmarkSuite) -> Vec<ClusterJob> {
    let mut rng = SimRng::seed_from(scenario.cell_seed());
    let rate = scenario.bench.rate_jobs_per_sec(scenario.rate) * scenario.devices as f64;
    // (variant, seq_len) -> service; at most a few dozen distinct chains.
    let mut costs: BTreeMap<(u8, u32), Duration> = BTreeMap::new();
    let mut now = Cycle::ZERO;
    let mut out = Vec::with_capacity(scenario.n_jobs);
    for i in 0..scenario.n_jobs {
        now += rng.exp_interarrival(rate);
        let spec = match scenario.bench {
            Benchmark::Lstm => rnn_spec(RnnCell::Lstm, Hidden::H128, &mut rng),
            Benchmark::Gru => rnn_spec(RnnCell::Gru, Hidden::H128, &mut rng),
            Benchmark::Van => rnn_spec(RnnCell::Vanilla, Hidden::H256, &mut rng),
            Benchmark::Hybrid => {
                if i % 2 == 0 {
                    rnn_spec(RnnCell::Lstm, Hidden::H128, &mut rng)
                } else {
                    rnn_spec(RnnCell::Gru, Hidden::H256, &mut rng)
                }
            }
            Benchmark::FanOut => ChainSpec::Dag { width: sample_fanout_width(&mut rng) as u32 },
            Benchmark::Ipa => ChainSpec::Dag { width: IPA_WIDTH as u32 },
            _ => ChainSpec::Single,
        };
        let key = match spec {
            ChainSpec::Single => (u8::MAX, 0),
            ChainSpec::Rnn { cell, hidden, seq_len } => (variant_key(cell, hidden), seq_len),
            ChainSpec::Dag { width } => (u8::MAX - 1, width),
        };
        let service_est = *costs
            .entry(key)
            .or_insert_with(|| chain_service(suite, spec, scenario.bench));
        out.push(ClusterJob { id: i as u32, arrival: now, service_est, spec });
    }
    out
}

fn rnn_spec(cell: RnnCell, hidden: Hidden, rng: &mut SimRng) -> ChainSpec {
    ChainSpec::Rnn { cell, hidden, seq_len: sample_seq_len(rng) }
}

/// Display label of one job in the detailed tier, matching what
/// [`workloads::suite::BenchmarkSuite::generate_jobs`] would emit.
fn job_label(bench: Benchmark, spec: ChainSpec) -> &'static str {
    match (bench, spec) {
        (Benchmark::Hybrid, ChainSpec::Rnn { cell: RnnCell::Lstm, .. }) => "HYBRID/LSTM128",
        (Benchmark::Hybrid, ChainSpec::Rnn { .. }) => "HYBRID/GRU256",
        (b, _) => b.name(),
    }
}

/// Builds a cluster run, mirroring `gpu_sim`'s `SimBuilder`: construct
/// with [`ClusterBuilder::new`], chain option setters, then
/// [`ClusterBuilder::run`].
#[derive(Clone)]
pub struct ClusterBuilder {
    scenario: ClusterScenario,
    fidelity: Fidelity,
    device_scheduler: String,
    slots: usize,
    jitter: f64,
    workers: usize,
    observers: Vec<SharedObserver>,
    fleet_faults: Option<FleetFaultPlan>,
    retry_budget: u32,
    retry_backoff: Duration,
    shed_degraded: bool,
}

impl fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("scenario", &self.scenario)
            .field("fidelity", &self.fidelity)
            .field("device_scheduler", &self.device_scheduler)
            .field("slots", &self.slots)
            .field("jitter", &self.jitter)
            .field("workers", &self.workers)
            .field("observers", &self.observers.len())
            .field("fleet_faults", &self.fleet_faults)
            .field("retry_budget", &self.retry_budget)
            .field("retry_backoff", &self.retry_backoff)
            .field("shed_degraded", &self.shed_degraded)
            .finish()
    }
}

impl ClusterBuilder {
    /// A builder with the defaults: fast fidelity, LAX device scheduler
    /// (detailed tier only), one service slot per compute unit of the
    /// Table 2 machine, 2% service jitter, [`default_jobs`] workers.
    pub fn new(scenario: ClusterScenario) -> Self {
        ClusterBuilder {
            scenario,
            fidelity: Fidelity::Fast,
            device_scheduler: "LAX".to_string(),
            slots: GpuConfig::default().num_cus as usize,
            jitter: 0.02,
            workers: default_jobs(),
            observers: Vec::new(),
            fleet_faults: None,
            retry_budget: 3,
            retry_backoff: Duration::from_us(100),
            shed_degraded: false,
        }
    }

    /// Selects the device fidelity tier.
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Scheduler each detailed-tier device runs (registry name; the fast
    /// tier has no scheduler — it is a FIFO queueing model).
    pub fn device_scheduler(mut self, name: &str) -> Self {
        self.device_scheduler = name.to_string();
        self
    }

    /// Concurrent service slots per device, for the router's free-time
    /// model and the fast tier's servers.
    pub fn slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Half-width of the fast tier's uniform service-jitter multiplier.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Worker threads devices are fanned across. The report is
    /// bit-identical for any value (device seeds never depend on workers).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches an observer to the cluster's probe bus.
    ///
    /// Event vocabulary, per run: one [`ProbeEvent::JobRouted`],
    /// [`ProbeEvent::JobRejected`] or [`ProbeEvent::JobShed`] per arrival
    /// and one [`ProbeEvent::JobRetried`] per recovered placement,
    /// delivered live in arrival order; [`ProbeEvent::DeviceDown`] /
    /// [`ProbeEvent::DeviceRestored`] at each fleet health transition
    /// (chaos path only); then, once devices have executed, one
    /// [`ProbeEvent::JobCompleted`] per run-to-completion job and exactly
    /// one [`ProbeEvent::JobMissed`] (typed by [`MissCause`]) per job that
    /// did not make its deadline, merged across devices into a single
    /// stream sorted by instant, then job id, with a job's completion
    /// before its miss.
    ///
    /// Determinism contract: observers are read-only taps. The returned
    /// [`ClusterReport`] is bit-identical with or without them for any
    /// worker count, the sorted outcome stream makes the *event order*
    /// worker-count-independent too, and with no observer attached the
    /// event payloads are never even built
    /// ([`sim_core::probe::ProbeHub::emit_with`]).
    pub fn observe(mut self, observer: SharedObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Overrides the fleet fault plan. Without this, the plan derives from
    /// the scenario's fault intensity via [`ClusterScenario::fault_seed`]
    /// ([`FleetFaultPlan::none`] at intensity 0).
    pub fn fleet_faults(mut self, plan: FleetFaultPlan) -> Self {
        self.fleet_faults = Some(plan);
        self
    }

    /// Maximum times one job lost to a device crash (or stalled with no
    /// device in rotation) re-enters the front door. `0` disables retry:
    /// every crash-lost job counts as lost. Default 3.
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Base sim-time backoff before a lost job's first retry; doubles per
    /// subsequent attempt. Deterministic — no wall-clock. Default 100 µs.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Enables load shedding under degraded capacity: while any device is
    /// out of rotation, an arriving job whose best predicted laxity across
    /// the survivors is already negative is shed at the front door
    /// (counted separately from policy rejections). Off by default.
    pub fn shed_degraded(mut self, shed: bool) -> Self {
        self.shed_degraded = shed;
        self
    }

    /// Routes the arrival stream and executes every device, returning the
    /// merged [`ClusterReport`].
    ///
    /// With an empty fleet fault plan this is the exact two-phase path
    /// (route everything, then execute devices in parallel); under faults
    /// it is the time-ordered chaos engine interleaving fault transitions,
    /// arrivals and retries. The dispatch is on the *plan*, so an
    /// intensity-0 scenario is bit-identical to one that never mentions
    /// faults.
    ///
    /// # Errors
    ///
    /// [`BenchError::UnknownPolicy`] for routing policies outside the
    /// registry; [`BenchError::FleetFault`] for an ill-formed fault plan;
    /// [`BenchError::UnknownScheduler`] / [`BenchError::Sim`] from
    /// detailed-tier devices.
    pub fn run(&self) -> Result<ClusterReport, BenchError> {
        let policy = routing::try_build(&self.scenario.policy)?;
        let suite = BenchmarkSuite::calibrated();
        let jobs = generate_cluster_jobs(&self.scenario, suite);
        let plan = match &self.fleet_faults {
            Some(p) => p.clone(),
            None if self.scenario.fault_milli > 0 => {
                // Fault windows span the arrival stream; the span is a pure
                // function of the cell (arrivals are policy-blind), so the
                // plan is too.
                let span = jobs
                    .last()
                    .map_or(Duration::ZERO, |j| j.arrival.saturating_since(Cycle::ZERO));
                FleetFaultPlan::seeded(
                    self.scenario.fault_seed(),
                    self.scenario.fault_intensity(),
                    span,
                    self.scenario.devices as u32,
                )
            }
            None => FleetFaultPlan::none(),
        };
        if plan.is_none() {
            self.run_plain(policy, jobs, suite)
        } else {
            plan.validate(self.scenario.devices as u32)?;
            self.run_chaos(policy, jobs, suite, &plan)
        }
    }

    /// The fault-free two-phase path: route the whole stream, then execute
    /// devices on the worker pool.
    fn run_plain(
        &self,
        policy: routing::RoutePolicy,
        jobs: Vec<ClusterJob>,
        suite: &BenchmarkSuite,
    ) -> Result<ClusterReport, BenchError> {
        let deadline = self.scenario.bench.deadline();
        let n = self.scenario.devices;
        // P2C's sampling stream is seeded from the cell, not the policy
        // string, so the job trace and all derived seeds stay paired.
        let mut router = Router::new(policy, n, self.slots, self.scenario.cell_seed());
        let mut hub: ProbeHub<ProbeEvent> = ProbeHub::new();
        for obs in &self.observers {
            hub.attach(Box::new(Arc::clone(obs)));
        }
        let mut per_device: Vec<Vec<ClusterJob>> = vec![Vec::new(); n];
        let mut rejected = 0u64;
        for job in &jobs {
            let req =
                RouteRequest { arrival: job.arrival, service_est: job.service_est, deadline };
            match router.route(&req) {
                RouteDecision::Route { device, predicted_wait, laxity_us } => {
                    hub.emit_with(job.arrival, || ProbeEvent::JobRouted {
                        job: JobId(job.id),
                        device: device as u16,
                        predicted_wait_us: predicted_wait.as_us_f64(),
                        laxity_us,
                    });
                    per_device[device].push(*job);
                }
                RouteDecision::Reject { laxity_us } => {
                    hub.emit_with(job.arrival, || ProbeEvent::JobRejected {
                        job: JobId(job.id),
                        laxity_us,
                    });
                    hub.emit_with(job.arrival, || ProbeEvent::JobMissed {
                        job: JobId(job.id),
                        device: None,
                        cause: MissCause::FrontDoorReject,
                    });
                    rejected += 1;
                }
                RouteDecision::NoDevice => {
                    unreachable!("all devices are Up on the fault-free path")
                }
            }
        }
        drop(jobs);
        let collect = hub.is_active();
        let indices: Vec<usize> = (0..n).collect();
        let slices = par_map(&indices, self.workers, |&d| {
            self.run_device(&self.scenario, d, &per_device[d], deadline, suite, collect)
        });
        // Merge in device-index order: StreamingQuantiles counts merge
        // order-independently but the mean's f64 sum does not, and the
        // report must be bit-identical across worker counts.
        let mut latency_us = StreamingQuantiles::new();
        let mut completed = 0u64;
        let mut met = 0u64;
        let mut device_rejected = 0u64;
        let mut makespan = Duration::ZERO;
        let mut events = 0u64;
        let mut misses = MissBreakdown::default();
        let mut outcome_events: Vec<OutcomeEvent> = Vec::new();
        let mut per_device_jobs = Vec::with_capacity(n);
        for slice in slices {
            let s = slice?;
            latency_us.merge(&s.latency_us);
            completed += s.completed;
            met += s.met;
            device_rejected += s.device_rejected;
            makespan = makespan.max(s.makespan);
            events += s.events;
            misses.merge(&s.misses);
            outcome_events.extend(s.outcomes);
            per_device_jobs.push(s.jobs);
        }
        misses.add_n(MissCause::FrontDoorReject, rejected);
        emit_outcomes(&mut hub, outcome_events);
        Ok(ClusterReport {
            scenario: self.scenario.clone(),
            fidelity: self.fidelity,
            total: self.scenario.n_jobs as u64,
            rejected,
            device_rejected,
            completed,
            met,
            lost: 0,
            retried: 0,
            shed: 0,
            misses,
            latency_us,
            per_device_jobs,
            makespan,
            events,
        })
    }

    /// Executes device `d` over its routed jobs at the selected fidelity.
    /// With `collect` set, every completion and deadline miss is also
    /// buffered as an [`OutcomeEvent`] for post-merge delivery.
    fn run_device(
        &self,
        scenario: &ClusterScenario,
        d: usize,
        jobs: &[ClusterJob],
        deadline: Duration,
        suite: &BenchmarkSuite,
        collect: bool,
    ) -> Result<DeviceSlice, BenchError> {
        match self.fidelity {
            Fidelity::Fast => {
                let fleet: Vec<FleetJob> = jobs
                    .iter()
                    .map(|j| FleetJob {
                        id: j.id,
                        arrival: j.arrival,
                        service_est: j.service_est,
                        deadline,
                    })
                    .collect();
                let params = FastDeviceParams {
                    slots: self.slots,
                    jitter: self.jitter,
                    seed: scenario.device_seed(d),
                };
                let report = run_fast_device(&fleet, &params);
                let mut latency_us = StreamingQuantiles::new();
                let mut met = 0u64;
                let mut misses = MissBreakdown::default();
                let mut outcomes = Vec::new();
                for o in &report.outcomes {
                    latency_us.push(o.latency.as_us_f64());
                    met += u64::from(o.met);
                    let cause = (!o.met).then(|| {
                        // Late, but the service itself fit the deadline
                        // budget: the job died waiting for a slot.
                        if o.completion.saturating_since(o.start) <= deadline {
                            MissCause::QueueingDelay
                        } else {
                            MissCause::ServiceTime
                        }
                    });
                    if let Some(cause) = cause {
                        misses.add(cause);
                    }
                    if collect {
                        outcomes.push(OutcomeEvent {
                            at: o.completion,
                            job: o.id,
                            kind: 0,
                            event: ProbeEvent::JobCompleted {
                                job: JobId(o.id),
                                device: d as u16,
                                latency_us: o.latency.as_us_f64(),
                                met: o.met,
                            },
                        });
                        if let Some(cause) = cause {
                            outcomes.push(OutcomeEvent {
                                at: o.completion,
                                job: o.id,
                                kind: 1,
                                event: ProbeEvent::JobMissed {
                                    job: JobId(o.id),
                                    device: Some(d as u16),
                                    cause,
                                },
                            });
                        }
                    }
                }
                Ok(DeviceSlice {
                    latency_us,
                    completed: jobs.len() as u64,
                    met,
                    device_rejected: 0,
                    makespan: report.makespan.saturating_since(Cycle::ZERO),
                    events: report.events,
                    jobs: jobs.len() as u64,
                    misses,
                    outcomes,
                })
            }
            Fidelity::Detailed => {
                if jobs.is_empty() {
                    return Ok(DeviceSlice::default());
                }
                let descs: Vec<JobDesc> = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, j)| {
                        materialize_job(suite, scenario.bench, j.spec, i as u32, deadline, j.arrival)
                    })
                    .collect();
                let mode = registry::try_build(&self.device_scheduler)?;
                let mut sim = Simulation::builder()
                    .offline_rates(suite.offline_rates())
                    .jobs(descs)
                    .scheduler(mode)
                    .build()?;
                let report = sim.try_run().map_err(BenchError::Sim)?;
                let mut latency_us = StreamingQuantiles::new();
                let mut misses = MissBreakdown::default();
                let mut outcomes = Vec::new();
                for r in &report.records {
                    if let Some(lat) = r.latency() {
                        latency_us.push(lat.as_us_f64());
                    }
                    // Local ids were assigned by enumeration, so the
                    // record maps straight back to the cluster job.
                    let job = &jobs[r.id.0 as usize];
                    attribute_detailed(
                        r,
                        &DetailedJob {
                            cluster_id: job.id,
                            service_est: job.service_est,
                            deadline,
                            device: d as u16,
                            requeue: Duration::ZERO,
                        },
                        &mut misses,
                        collect.then_some(&mut outcomes),
                    );
                }
                Ok(DeviceSlice {
                    latency_us,
                    completed: report.completed() as u64,
                    met: report.deadlines_met() as u64,
                    device_rejected: report.rejected() as u64,
                    makespan: report.makespan,
                    events: report.events,
                    jobs: jobs.len() as u64,
                    misses,
                    outcomes,
                })
            }
        }
    }
}

impl ClusterBuilder {
    /// The chaos engine: one time-ordered pass interleaving fleet fault
    /// transitions, job arrivals and retries. Deterministic global order:
    /// by instant, then kind (fault transitions < arrivals < retries),
    /// then stream/schedule position — so the run is a pure function of
    /// the cell and plan, independent of worker count.
    ///
    /// The fast tier executes bookings inline against per-device slot
    /// models with the same jitter stream and arithmetic as
    /// [`run_fast_device`], so a plan whose only effect is a no-op (e.g.
    /// factor-1.0 stragglers) reproduces the fault-free report
    /// bit-identically. The detailed tier uses the slot model (un-jittered)
    /// only to decide crash losses, then materializes each device's
    /// surviving bookings as a full [`Simulation`] with the device's
    /// straggler windows translated to [`Slowdown`] faults.
    fn run_chaos(
        &self,
        policy: routing::RoutePolicy,
        jobs: Vec<ClusterJob>,
        suite: &BenchmarkSuite,
        plan: &FleetFaultPlan,
    ) -> Result<ClusterReport, BenchError> {
        assert!(self.slots >= 1, "a device needs at least one service slot");
        assert!(
            (0.0..1.0).contains(&self.jitter),
            "jitter must be in [0, 1), got {}",
            self.jitter
        );
        let deadline = self.scenario.bench.deadline();
        let n = self.scenario.devices;
        let detailed = self.fidelity == Fidelity::Detailed;
        let mut router = Router::new(policy, n, self.slots, self.scenario.cell_seed());
        let mut hub: ProbeHub<ProbeEvent> = ProbeHub::new();
        for obs in &self.observers {
            hub.attach(Box::new(Arc::clone(obs)));
        }
        let collect = hub.is_active();
        let mut devs: Vec<ChaosDevice> = (0..n)
            .map(|d| ChaosDevice::new(d as u16, self.slots, self.scenario.device_seed(d)))
            .collect();
        // Straggler windows per device, scanned statically at booking time
        // (the schedule is known a priori, so no transition state needed).
        let mut stragglers: Vec<Vec<(Cycle, Cycle, f64)>> = vec![Vec::new(); n];
        for w in &plan.stragglers {
            stragglers[w.device as usize].push((w.at, w.until, w.factor));
        }
        // Health transitions, expanded so correlated outages become one
        // event per member device; `transitions()` order (ends before
        // starts at equal instants) is preserved.
        let mut fleet_events: Vec<(Cycle, DevAction)> = Vec::new();
        for (t, action) in plan.transitions() {
            match action {
                FleetFaultAction::CrashStart(i) => {
                    fleet_events.push((t, DevAction::Down(plan.crashes[i].device as usize)));
                }
                FleetFaultAction::CrashEnd(i) => {
                    fleet_events.push((t, DevAction::Up(plan.crashes[i].device as usize)));
                }
                FleetFaultAction::OutageStart(i) => {
                    let o = &plan.outages[i];
                    for d in o.first..o.first + o.count {
                        fleet_events.push((t, DevAction::Down(d as usize)));
                    }
                }
                FleetFaultAction::OutageEnd(i) => {
                    let o = &plan.outages[i];
                    for d in o.first..o.first + o.count {
                        fleet_events.push((t, DevAction::Up(d as usize)));
                    }
                }
                FleetFaultAction::DrainStart(i) => {
                    fleet_events.push((t, DevAction::DrainOn(plan.drains[i].device as usize)));
                }
                FleetFaultAction::DrainEnd(i) => {
                    fleet_events.push((t, DevAction::DrainOff(plan.drains[i].device as usize)));
                }
                FleetFaultAction::StragglerStart(_) | FleetFaultAction::StragglerEnd(_) => {}
            }
        }
        let mut ei = 0usize;
        let mut retries: std::collections::BinaryHeap<std::cmp::Reverse<RetryEntry>> =
            std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut rejected = 0u64;
        let mut shed = 0u64;
        let mut lost = 0u64;
        let mut retried = 0u64;
        let mut misses = MissBreakdown::default();
        let mut outcome_events: Vec<OutcomeEvent> = Vec::new();

        // One job's loss becoming final at the retry layer (budget out, or
        // no surviving device can make the deadline).
        macro_rules! lose_exhausted {
            ($at:expr, $id:expr) => {{
                lost += 1;
                misses.add(MissCause::RetryExhausted);
                if collect {
                    outcome_events.push(OutcomeEvent {
                        at: $at,
                        job: $id,
                        kind: 1,
                        event: ProbeEvent::JobMissed {
                            job: JobId($id),
                            device: None,
                            cause: MissCause::RetryExhausted,
                        },
                    });
                }
            }};
        }

        // One fleet event: flush/restore device state and drive health.
        macro_rules! apply_fleet_event {
            ($t:expr, $action:expr) => {{
                let t = $t;
                match $action {
                    DevAction::Down(d) => {
                        let dev = &mut devs[d];
                        dev.down += 1;
                        if dev.down == 1 {
                            let bookings = std::mem::take(&mut dev.bookings);
                            let mut lost_here = 0u32;
                            for b in bookings {
                                if b.completion <= t {
                                    // Done before the crash hit.
                                    if detailed {
                                        dev.survivors.push(b);
                                    } else {
                                        dev.complete(&b, collect);
                                    }
                                } else {
                                    // In flight or queued: gone with the
                                    // device; retry if budget remains.
                                    lost_here += 1;
                                    if !detailed {
                                        dev.events += 1;
                                    }
                                    let id = b.id;
                                    if chaos_lose(
                                        b,
                                        t,
                                        self.retry_budget,
                                        self.retry_backoff,
                                        &mut retries,
                                        &mut seq,
                                        &mut lost,
                                    ) {
                                        misses.add(MissCause::CrashLoss);
                                        if collect {
                                            outcome_events.push(OutcomeEvent {
                                                at: t,
                                                job: id,
                                                kind: 1,
                                                event: ProbeEvent::JobMissed {
                                                    job: JobId(id),
                                                    device: Some(d as u16),
                                                    cause: MissCause::CrashLoss,
                                                },
                                            });
                                        }
                                    }
                                }
                            }
                            hub.emit_with(t, || ProbeEvent::DeviceDown {
                                device: d as u16,
                                crashed: true,
                                lost: lost_here,
                            });
                            router.set_health(d, DeviceHealth::Down);
                        }
                    }
                    DevAction::Up(d) => {
                        let dev = &mut devs[d];
                        dev.down -= 1;
                        if dev.down == 0 {
                            // Restored with an empty queue: both the actual
                            // model and the router's predictions restart at
                            // the restore instant.
                            for s in &mut dev.slots {
                                *s = t;
                            }
                            router.reset_device(d, t);
                            let h = if dev.draining > 0 {
                                DeviceHealth::Draining
                            } else {
                                DeviceHealth::Up
                            };
                            router.set_health(d, h);
                            if h == DeviceHealth::Up {
                                hub.emit_with(t, || ProbeEvent::DeviceRestored {
                                    device: d as u16,
                                });
                            }
                        }
                    }
                    DevAction::DrainOn(d) => {
                        let dev = &mut devs[d];
                        dev.draining += 1;
                        if dev.draining == 1 && dev.down == 0 {
                            // In-flight work keeps running; only new
                            // placements stop.
                            hub.emit_with(t, || ProbeEvent::DeviceDown {
                                device: d as u16,
                                crashed: false,
                                lost: 0,
                            });
                            router.set_health(d, DeviceHealth::Draining);
                        }
                    }
                    DevAction::DrainOff(d) => {
                        let dev = &mut devs[d];
                        dev.draining -= 1;
                        if dev.draining == 0 && dev.down == 0 {
                            router.set_health(d, DeviceHealth::Up);
                            hub.emit_with(t, || ProbeEvent::DeviceRestored { device: d as u16 });
                        }
                    }
                }
            }};
        }

        // One retry firing: deadline-aware re-admission for every policy.
        macro_rules! fire_retry {
            ($entry:expr) => {{
                let RetryEntry { at, job, .. } = $entry;
                let req = RouteRequest {
                    arrival: at,
                    service_est: job.service_est,
                    deadline: job.deadline_abs.saturating_since(at),
                };
                match router.best_laxity(&req) {
                    None => {
                        // Still nothing in rotation; back off again until
                        // the budget runs out.
                        if job.attempt < self.retry_budget {
                            seq += 1;
                            retries.push(std::cmp::Reverse(RetryEntry {
                                at: at + backoff_for(self.retry_backoff, job.attempt),
                                seq,
                                job: RetryJob { attempt: job.attempt + 1, ..job },
                            }));
                        } else {
                            lose_exhausted!(at, job.id);
                        }
                    }
                    Some(lax) if lax < 0.0 => {
                        // The laxity gate: no survivor can make the
                        // remaining deadline, so re-placing would only
                        // burn capacity on a guaranteed miss.
                        lose_exhausted!(at, job.id);
                    }
                    Some(_) => match router.route(&req) {
                        RouteDecision::Route { device, .. } => {
                            retried += 1;
                            hub.emit_with(at, || ProbeEvent::JobRetried {
                                job: JobId(job.id),
                                attempt: job.attempt,
                                device: device as u16,
                            });
                            devs[device].book(
                                self.jitter,
                                &stragglers[device],
                                detailed,
                                at,
                                &job,
                            );
                        }
                        // best_laxity was non-negative, so LL admits and
                        // some device is Up; defensive completeness.
                        RouteDecision::Reject { .. } | RouteDecision::NoDevice => {
                            lose_exhausted!(at, job.id);
                        }
                    },
                }
            }};
        }

        for job in &jobs {
            let t_arr = job.arrival;
            // Replay fault transitions (≤ arrival) and retries (< arrival)
            // in merged time order; equal-instant ties go to transitions.
            loop {
                let next_ev = fleet_events.get(ei).map(|e| e.0);
                let next_re = retries.peek().map(|r| r.0.at);
                let ev_ok = next_ev.is_some_and(|te| te <= t_arr);
                let re_ok = next_re.is_some_and(|tr| tr < t_arr);
                if ev_ok && (!re_ok || next_ev <= next_re) {
                    let (t, action) = fleet_events[ei];
                    ei += 1;
                    apply_fleet_event!(t, action);
                } else if re_ok {
                    let std::cmp::Reverse(entry) = retries.pop().expect("peeked");
                    fire_retry!(entry);
                } else {
                    break;
                }
            }
            let deadline_abs = t_arr + deadline;
            let req =
                RouteRequest { arrival: t_arr, service_est: job.service_est, deadline };
            if self.shed_degraded && (0..n).any(|d| router.health(d) != DeviceHealth::Up) {
                if let Some(lax) = router.best_laxity(&req) {
                    if lax < 0.0 {
                        shed += 1;
                        hub.emit_with(t_arr, || ProbeEvent::JobShed {
                            job: JobId(job.id),
                            laxity_us: lax,
                        });
                        hub.emit_with(t_arr, || ProbeEvent::JobMissed {
                            job: JobId(job.id),
                            device: None,
                            cause: MissCause::Shed,
                        });
                        continue;
                    }
                }
            }
            match router.route(&req) {
                RouteDecision::Route { device, predicted_wait, laxity_us } => {
                    hub.emit_with(t_arr, || ProbeEvent::JobRouted {
                        job: JobId(job.id),
                        device: device as u16,
                        predicted_wait_us: predicted_wait.as_us_f64(),
                        laxity_us,
                    });
                    let retry = RetryJob {
                        id: job.id,
                        original_arrival: t_arr,
                        service_est: job.service_est,
                        deadline_abs,
                        attempt: 0,
                        spec: job.spec,
                    };
                    devs[device].book(self.jitter, &stragglers[device], detailed, t_arr, &retry);
                }
                RouteDecision::Reject { laxity_us } => {
                    hub.emit_with(t_arr, || ProbeEvent::JobRejected {
                        job: JobId(job.id),
                        laxity_us,
                    });
                    hub.emit_with(t_arr, || ProbeEvent::JobMissed {
                        job: JobId(job.id),
                        device: None,
                        cause: MissCause::FrontDoorReject,
                    });
                    rejected += 1;
                }
                RouteDecision::NoDevice => {
                    // Whole fleet out of rotation: hold the job and retry
                    // once capacity returns, budget permitting.
                    if self.retry_budget > 0 {
                        seq += 1;
                        retries.push(std::cmp::Reverse(RetryEntry {
                            at: t_arr + backoff_for(self.retry_backoff, 0),
                            seq,
                            job: RetryJob {
                                id: job.id,
                                original_arrival: t_arr,
                                service_est: job.service_est,
                                deadline_abs,
                                attempt: 1,
                                spec: job.spec,
                            },
                        }));
                    } else {
                        lose_exhausted!(t_arr, job.id);
                    }
                }
            }
        }
        drop(jobs);
        // Drain what remains: the tail of the fault schedule and every
        // pending retry, still in merged time order.
        loop {
            let next_ev = fleet_events.get(ei).map(|e| e.0);
            let next_re = retries.peek().map(|r| r.0.at);
            match (next_ev, next_re) {
                (Some(te), Some(tr)) if te <= tr => {
                    let (t, action) = fleet_events[ei];
                    ei += 1;
                    apply_fleet_event!(t, action);
                }
                (Some(_), None) => {
                    let (t, action) = fleet_events[ei];
                    ei += 1;
                    apply_fleet_event!(t, action);
                }
                (_, Some(_)) => {
                    let std::cmp::Reverse(entry) = retries.pop().expect("peeked");
                    fire_retry!(entry);
                }
                (None, None) => break,
            }
        }
        // Everything still booked outlives the fault schedule and
        // completes.
        for dev in &mut devs {
            let bookings = std::mem::take(&mut dev.bookings);
            for b in bookings {
                if detailed {
                    dev.survivors.push(b);
                } else {
                    dev.complete(&b, collect);
                }
            }
        }

        let mut latency_us = StreamingQuantiles::new();
        let mut completed = 0u64;
        let mut met = 0u64;
        let mut device_rejected = 0u64;
        let mut makespan = Duration::ZERO;
        let mut events = 0u64;
        let mut per_device_jobs = Vec::with_capacity(n);
        if detailed {
            let survivor_lists: Vec<Vec<Booking>> =
                devs.iter_mut().map(|dev| std::mem::take(&mut dev.survivors)).collect();
            let indices: Vec<usize> = (0..n).collect();
            let slices = par_map(&indices, self.workers, |&d| {
                self.run_detailed_survivors(d, &survivor_lists[d], &stragglers[d], suite, collect)
            });
            for (d, slice) in slices.into_iter().enumerate() {
                let s = slice?;
                latency_us.merge(&s.latency_us);
                completed += s.completed;
                met += s.met;
                device_rejected += s.device_rejected;
                makespan = makespan.max(s.makespan);
                events += s.events;
                misses.merge(&s.misses);
                outcome_events.extend(s.outcomes);
                per_device_jobs.push(devs[d].booked);
            }
        } else {
            for dev in &mut devs {
                latency_us.merge(&dev.sketch);
                completed += dev.completed;
                met += dev.met;
                makespan = makespan.max(dev.makespan.saturating_since(Cycle::ZERO));
                events += dev.events;
                misses.merge(&dev.misses);
                outcome_events.append(&mut dev.outcomes);
                per_device_jobs.push(dev.booked);
            }
        }
        misses.add_n(MissCause::FrontDoorReject, rejected);
        misses.add_n(MissCause::Shed, shed);
        emit_outcomes(&mut hub, outcome_events);
        Ok(ClusterReport {
            scenario: self.scenario.clone(),
            fidelity: self.fidelity,
            total: self.scenario.n_jobs as u64,
            rejected,
            device_rejected,
            completed,
            met,
            lost,
            retried,
            shed,
            misses,
            latency_us,
            per_device_jobs,
            makespan,
            events,
        })
    }

    /// Detailed-tier phase 2 under chaos: materialize one device's
    /// surviving bookings (entry order, deadlines measured from the
    /// original arrival) as a full simulation, with the device's straggler
    /// windows applied as whole-device [`Slowdown`] faults.
    fn run_detailed_survivors(
        &self,
        d: usize,
        survivors: &[Booking],
        windows: &[(Cycle, Cycle, f64)],
        suite: &BenchmarkSuite,
        collect: bool,
    ) -> Result<DeviceSlice, BenchError> {
        if survivors.is_empty() {
            return Ok(DeviceSlice::default());
        }
        let bench = self.scenario.bench;
        let descs: Vec<JobDesc> = survivors
            .iter()
            .enumerate()
            .map(|(i, b)| {
                // A retried booking enters at its retry instant but is
                // held to its original deadline: the relative deadline
                // shrinks by the time already burned.
                materialize_job(
                    suite,
                    bench,
                    b.spec,
                    i as u32,
                    b.deadline_abs.saturating_since(b.entry),
                    b.entry,
                )
            })
            .collect();
        let mode = registry::try_build(&self.device_scheduler)?;
        let faults = FaultPlan {
            slowdowns: windows
                .iter()
                .map(|&(at, until, factor)| Slowdown { at, until, factor })
                .collect(),
            ..FaultPlan::none()
        };
        let mut sim = Simulation::builder()
            .offline_rates(suite.offline_rates())
            .jobs(descs)
            .scheduler(mode)
            .faults(faults)
            .build()?;
        let report = sim.try_run().map_err(BenchError::Sim)?;
        let mut latency_us = StreamingQuantiles::new();
        let mut misses = MissBreakdown::default();
        let mut outcomes = Vec::new();
        for r in &report.records {
            let b = &survivors[r.id.0 as usize];
            let requeue_delay = b.entry.saturating_since(b.original_arrival);
            if let Some(lat) = r.latency() {
                // Latency is arrival-to-completion of the *original* job,
                // so a retry pays for its first, doomed placement too.
                latency_us.push(lat.saturating_add(requeue_delay).as_us_f64());
            }
            attribute_detailed(
                r,
                &DetailedJob {
                    cluster_id: b.id,
                    service_est: b.service_est,
                    deadline: b.deadline_abs.saturating_since(b.original_arrival),
                    device: d as u16,
                    requeue: requeue_delay,
                },
                &mut misses,
                collect.then_some(&mut outcomes),
            );
        }
        Ok(DeviceSlice {
            latency_us,
            completed: report.completed() as u64,
            met: report.deadlines_met() as u64,
            device_rejected: report.rejected() as u64,
            makespan: report.makespan,
            events: report.events,
            jobs: survivors.len() as u64,
            misses,
            outcomes,
        })
    }
}

/// One expanded fleet-fault transition targeting a single device.
#[derive(Debug, Clone, Copy)]
enum DevAction {
    /// Device crashes (crash or outage-member start).
    Down(usize),
    /// Crash/outage window ends.
    Up(usize),
    /// Drain window opens.
    DrainOn(usize),
    /// Drain window closes.
    DrainOff(usize),
}

/// A job (re-)entering the front door: either an original arrival held
/// back by a fleet-wide outage or a booking lost to a device crash.
#[derive(Debug, Clone, Copy)]
struct RetryJob {
    id: u32,
    original_arrival: Cycle,
    service_est: Duration,
    deadline_abs: Cycle,
    /// Which retry generation this is (0 = the initial placement).
    attempt: u32,
    spec: ChainSpec,
}

/// A scheduled retry, ordered by (fire instant, schedule sequence) — the
/// payload never participates in the ordering.
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    at: Cycle,
    seq: u64,
    job: RetryJob,
}

impl PartialEq for RetryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for RetryEntry {}

impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Exponential sim-time backoff: `base << attempt`, saturating (the shift
/// is capped well past any realistic budget).
fn backoff_for(base: Duration, attempt: u32) -> Duration {
    Duration::from_cycles(base.as_cycles().saturating_mul(1u64 << attempt.min(20)))
}

/// Requeues a crash-lost booking if its retry budget allows, else counts
/// it lost. Returns `true` when the loss became final (the caller
/// attributes it as a crash loss).
fn chaos_lose(
    b: Booking,
    now: Cycle,
    budget: u32,
    backoff: Duration,
    retries: &mut std::collections::BinaryHeap<std::cmp::Reverse<RetryEntry>>,
    seq: &mut u64,
    lost: &mut u64,
) -> bool {
    if b.attempt < budget {
        *seq += 1;
        retries.push(std::cmp::Reverse(RetryEntry {
            at: now + backoff_for(backoff, b.attempt),
            seq: *seq,
            job: RetryJob {
                id: b.id,
                original_arrival: b.original_arrival,
                service_est: b.service_est,
                deadline_abs: b.deadline_abs,
                attempt: b.attempt + 1,
                spec: b.spec,
            },
        }));
        false
    } else {
        *lost += 1;
        true
    }
}

/// One placement on a chaos device, unresolved until the device either
/// survives past its completion or crashes first.
#[derive(Debug, Clone, Copy)]
struct Booking {
    id: u32,
    original_arrival: Cycle,
    /// When this placement entered the device (> original arrival for
    /// retries).
    entry: Cycle,
    /// Service start instant (first slot grab; `start == completion -
    /// stretched service`), for splitting a late completion into queueing
    /// delay vs service time.
    start: Cycle,
    /// Model completion instant (fast: jittered and straggler-stretched;
    /// detailed: calibrated estimate).
    completion: Cycle,
    deadline_abs: Cycle,
    service_est: Duration,
    attempt: u32,
    spec: ChainSpec,
}

/// Mutable per-device state of the chaos engine.
#[derive(Debug)]
struct ChaosDevice {
    /// This device's fleet index, stamped into outcome events.
    index: u16,
    /// Free-at instants of the actual service slots (the executing model,
    /// distinct from the router's predictions).
    slots: Vec<Cycle>,
    /// Jitter stream, one draw per booking in booking order — the same
    /// stream [`run_fast_device`] would consume in a fault-free run.
    rng: SimRng,
    /// Unresolved placements, in booking order.
    bookings: Vec<Booking>,
    /// Detailed tier: bookings that survived to completion, awaiting
    /// phase-2 materialization.
    survivors: Vec<Booking>,
    sketch: StreamingQuantiles,
    completed: u64,
    met: u64,
    booked: u64,
    events: u64,
    makespan: Cycle,
    /// Open crash/outage windows (health `Down` while > 0).
    down: u32,
    /// Open drain windows (health `Draining` while > 0 and not down).
    draining: u32,
    /// Fast tier: typed causes of this device's late completions.
    misses: MissBreakdown,
    /// Fast tier: buffered completion/miss events (only when collecting).
    outcomes: Vec<OutcomeEvent>,
}

impl ChaosDevice {
    fn new(index: u16, slots: usize, seed: u64) -> Self {
        ChaosDevice {
            index,
            slots: vec![Cycle::ZERO; slots],
            rng: SimRng::seed_from(seed),
            bookings: Vec::new(),
            survivors: Vec::new(),
            sketch: StreamingQuantiles::new(),
            completed: 0,
            met: 0,
            booked: 0,
            events: 0,
            makespan: Cycle::ZERO,
            down: 0,
            draining: 0,
            misses: MissBreakdown::default(),
            outcomes: Vec::new(),
        }
    }

    /// Books one placement, mirroring [`run_fast_device`]'s service
    /// arithmetic exactly (same jitter draw, same slot selection) so a
    /// no-op fault plan reproduces the fault-free run bit for bit; active
    /// straggler windows at the start instant stretch the service time.
    fn book(
        &mut self,
        jitter: f64,
        windows: &[(Cycle, Cycle, f64)],
        detailed: bool,
        entry: Cycle,
        job: &RetryJob,
    ) {
        let service = if detailed || jitter == 0.0 {
            job.service_est
        } else {
            let m = 1.0 - jitter + 2.0 * jitter * self.rng.uniform_f64();
            job.service_est.mul_f64(m)
        };
        let slot = self.slots.iter_mut().min().expect("at least one slot");
        let start = (*slot).max(entry);
        let service = if detailed {
            service
        } else {
            let factor: f64 = windows
                .iter()
                .filter(|&&(at, until, _)| at <= start && start < until)
                .map(|&(_, _, f)| f)
                .product();
            // Apply only a real stretch: `mul_f64(1.0)` is arithmetically
            // a no-op but must also be one bit-for-bit.
            if factor != 1.0 {
                service.mul_f64(factor)
            } else {
                service
            }
        };
        let completion = start + service;
        *slot = completion;
        self.booked += 1;
        self.bookings.push(Booking {
            id: job.id,
            original_arrival: job.original_arrival,
            entry,
            start,
            completion,
            deadline_abs: job.deadline_abs,
            service_est: job.service_est,
            attempt: job.attempt,
            spec: job.spec,
        });
    }

    /// Resolves one fast-tier booking as completed, attributing a typed
    /// cause when it blew its deadline (and, when collecting, buffering
    /// the completion/miss events).
    fn complete(&mut self, b: &Booking, collect: bool) {
        let latency = b.completion.saturating_since(b.original_arrival);
        let met = b.completion <= b.deadline_abs;
        self.sketch.push(latency.as_us_f64());
        self.met += u64::from(met);
        self.completed += 1;
        self.makespan = self.makespan.max(b.completion);
        self.events += 2;
        if !met {
            // Same split as the plain fast path: late although the
            // (stretched) service alone fit the deadline budget means the
            // job died waiting for a slot.
            let cause = if b.completion.saturating_since(b.start)
                <= b.deadline_abs.saturating_since(b.original_arrival)
            {
                MissCause::QueueingDelay
            } else {
                MissCause::ServiceTime
            };
            self.misses.add(cause);
            if collect {
                self.outcomes.push(OutcomeEvent {
                    at: b.completion,
                    job: b.id,
                    kind: 1,
                    event: ProbeEvent::JobMissed {
                        job: JobId(b.id),
                        device: Some(self.index),
                        cause,
                    },
                });
            }
        }
        if collect {
            self.outcomes.push(OutcomeEvent {
                at: b.completion,
                job: b.id,
                kind: 0,
                event: ProbeEvent::JobCompleted {
                    job: JobId(b.id),
                    device: self.index,
                    latency_us: latency.as_us_f64(),
                    met,
                },
            });
        }
    }
}

/// One buffered completion/miss probe event. Devices execute in pool
/// order, so their outcome events are collected per device and merged
/// into a single sorted stream before any observer sees them.
#[derive(Debug, Clone)]
struct OutcomeEvent {
    at: Cycle,
    /// Cluster-wide job id (sort key after the instant).
    job: u32,
    /// Final tie-break: a job's completion (0) sorts before its miss (1).
    kind: u8,
    event: ProbeEvent,
}

/// Delivers buffered outcome events in one deterministic order — by
/// instant, then job id, then completion-before-miss — so the stream an
/// observer sees is independent of worker count and device merge order.
fn emit_outcomes(hub: &mut ProbeHub<ProbeEvent>, mut outcomes: Vec<OutcomeEvent>) {
    outcomes.sort_by_key(|o| (o.at, o.job, o.kind));
    for o in outcomes {
        hub.emit(o.at, o.event);
    }
}

/// Cluster-scope identity of one detailed-tier job, for
/// [`attribute_detailed`]: the fields the device-local [`JobRecord`]
/// does not know.
#[derive(Clone, Copy)]
struct DetailedJob {
    /// Cluster-wide job id (the record's id is device-local).
    cluster_id: u32,
    /// Calibrated isolated service estimate of the job's chain.
    service_est: Duration,
    /// Relative deadline against the *original* arrival.
    deadline: Duration,
    /// Device the job ran on.
    device: u16,
    /// Time a chaos-path retry already burned before entering this device
    /// (zero on the plain path), included in the reported latency like
    /// the sketch's.
    requeue: Duration,
}

/// Classifies one detailed-tier job record: a `JobCompleted` event for
/// every finished job, and exactly one typed miss for every job that did
/// not make its deadline. Late completions (and scheduler aborts) split on
/// whether the calibrated service estimate alone fit the relative
/// deadline — queueing delay if it did, service time if not; admission
/// rejections are `DeviceReject`.
fn attribute_detailed(
    r: &JobRecord,
    job: &DetailedJob,
    misses: &mut MissBreakdown,
    outcomes: Option<&mut Vec<OutcomeEvent>>,
) {
    let DetailedJob { cluster_id, service_est, deadline, device, requeue } = *job;
    let slow = if service_est <= deadline {
        MissCause::QueueingDelay
    } else {
        MissCause::ServiceTime
    };
    let (at, completion, cause) = match r.fate {
        JobFate::Completed(t) => (t, Some(t), (!r.met_deadline()).then_some(slow)),
        JobFate::Rejected(t) => (t, None, Some(MissCause::DeviceReject)),
        JobFate::Aborted(t) => (t, None, Some(slow)),
        JobFate::Unfinished => (r.deadline_abs, None, Some(slow)),
    };
    if let Some(cause) = cause {
        misses.add(cause);
    }
    let Some(outcomes) = outcomes else { return };
    if let Some(t) = completion {
        outcomes.push(OutcomeEvent {
            at: t,
            job: cluster_id,
            kind: 0,
            event: ProbeEvent::JobCompleted {
                job: JobId(cluster_id),
                device,
                latency_us: t.saturating_since(r.arrival).saturating_add(requeue).as_us_f64(),
                met: r.met_deadline(),
            },
        });
    }
    if let Some(cause) = cause {
        outcomes.push(OutcomeEvent {
            at,
            job: cluster_id,
            kind: 1,
            event: ProbeEvent::JobMissed { job: JobId(cluster_id), device: Some(device), cause },
        });
    }
}

/// What one device contributes to the merged report.
#[derive(Debug, Clone, Default)]
struct DeviceSlice {
    latency_us: StreamingQuantiles,
    completed: u64,
    met: u64,
    device_rejected: u64,
    makespan: Duration,
    events: u64,
    jobs: u64,
    misses: MissBreakdown,
    /// Buffered completion/miss events; empty unless the run collected
    /// them (an observer was attached).
    outcomes: Vec<OutcomeEvent>,
}

/// Merged outcome of one cluster cell. Compares bit-exactly (`PartialEq`),
/// which the worker-count determinism tests and checkpoint round trip rely
/// on.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// The cell that produced this report.
    pub scenario: ClusterScenario,
    /// Fidelity tier the devices ran at.
    pub fidelity: Fidelity,
    /// Jobs in the arrival stream.
    pub total: u64,
    /// Jobs the router rejected at the front door (LL admission).
    pub rejected: u64,
    /// Jobs a device's own admission control rejected (detailed tier).
    pub device_rejected: u64,
    /// Jobs that completed on some device.
    pub completed: u64,
    /// Completed jobs that made their deadline.
    pub met: u64,
    /// Jobs lost to device crashes (in flight when the device went down
    /// and not recovered within the retry budget). Zero without faults.
    pub lost: u64,
    /// Successful re-placements of crash-lost (or outage-stalled) jobs.
    pub retried: u64,
    /// Jobs shed at the front door under degraded capacity
    /// ([`ClusterBuilder::shed_degraded`]). Zero without faults.
    pub shed: u64,
    /// Per-cause breakdown of every job that did not make its deadline.
    /// Conserves exactly against the counters above — see
    /// [`MissBreakdown`] for the identities, the headline one being
    /// `misses.total() == total - met`. Computed on every run, observed or
    /// not, by the same arithmetic in both run paths (a no-op fault plan
    /// yields a bit-identical breakdown).
    pub misses: MissBreakdown,
    /// Arrival-to-completion latency sketch over completed jobs,
    /// microseconds (p50/p99/p999 within 0.5% relative error).
    pub latency_us: StreamingQuantiles,
    /// Jobs routed to each device, in device-index order.
    pub per_device_jobs: Vec<u64>,
    /// Latest device makespan.
    pub makespan: Duration,
    /// Model events processed, summed over devices.
    pub events: u64,
}

impl ClusterReport {
    /// Deadline attainment: the fraction of *all* offered jobs that
    /// completed by their deadline. Rejected jobs — at the front door or a
    /// device — count as misses, so admission cannot inflate the score.
    pub fn attainment(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.met as f64 / self.total as f64
    }
}

/// Renders the per-policy SLO-attainment table the `cluster` binary writes:
/// one row per report, with streaming p50/p99/p999 latency tails and the
/// miss attribution split (`m_queue`/`m_serv`: late completions that died
/// waiting for a slot vs. ones whose service alone blew the deadline).
pub fn cluster_table(reports: &[ClusterReport]) -> Table {
    let mut table = Table::with_columns(&[
        "cell",
        "policy",
        "devices",
        "jobs",
        "routed",
        "rejected",
        "met",
        "m_queue",
        "m_serv",
        "attain",
        "p50_us",
        "p99_us",
        "p999_us",
        "mean_us",
        "makespan_ms",
    ]);
    for r in reports {
        let s = &r.scenario;
        table.row(vec![
            format!("{}:{}", s.bench, s.rate),
            s.policy.clone(),
            s.devices.to_string(),
            r.total.to_string(),
            (r.total - r.rejected).to_string(),
            (r.rejected + r.device_rejected).to_string(),
            r.met.to_string(),
            r.misses.count(MissCause::QueueingDelay).to_string(),
            r.misses.count(MissCause::ServiceTime).to_string(),
            format!("{:.4}", r.attainment()),
            format!("{:.1}", r.latency_us.p50()),
            format!("{:.1}", r.latency_us.p99()),
            format!("{:.1}", r.latency_us.p999()),
            format!("{:.1}", r.latency_us.mean()),
            format!("{:.2}", r.makespan.as_us_f64() / 1000.0),
        ]);
    }
    table
}

/// Renders the robustness table the `chaos` binary writes: one row per
/// report with the failure-domain counters (shed/lost/retried) alongside
/// the attainment and latency tails, plus the typed miss attribution
/// (`m_queue`/`m_serv` split late completions, `m_crash`/`m_retry` split
/// final losses). [`cluster_table`] stays unchanged so fault-free results
/// files are byte-stable.
pub fn chaos_table(reports: &[ClusterReport]) -> Table {
    let mut table = Table::with_columns(&[
        "cell",
        "policy",
        "f",
        "devices",
        "jobs",
        "rejected",
        "shed",
        "lost",
        "retried",
        "done",
        "met",
        "m_queue",
        "m_serv",
        "m_crash",
        "m_retry",
        "attain",
        "p50_us",
        "p99_us",
        "p999_us",
        "mean_us",
        "makespan_ms",
    ]);
    for r in reports {
        let s = &r.scenario;
        table.row(vec![
            format!("{}:{}", s.bench, s.rate),
            s.policy.clone(),
            format!("{}", s.fault_intensity()),
            s.devices.to_string(),
            r.total.to_string(),
            (r.rejected + r.device_rejected).to_string(),
            r.shed.to_string(),
            r.lost.to_string(),
            r.retried.to_string(),
            r.completed.to_string(),
            r.met.to_string(),
            r.misses.count(MissCause::QueueingDelay).to_string(),
            r.misses.count(MissCause::ServiceTime).to_string(),
            r.misses.count(MissCause::CrashLoss).to_string(),
            r.misses.count(MissCause::RetryExhausted).to_string(),
            format!("{:.4}", r.attainment()),
            format!("{:.1}", r.latency_us.p50()),
            format!("{:.1}", r.latency_us.p99()),
            format!("{:.1}", r.latency_us.p999()),
            format!("{:.1}", r.latency_us.mean()),
            format!("{:.2}", r.makespan.as_us_f64() / 1000.0),
        ]);
    }
    table
}

// v2 added `lost retried shed` to the summary line; v3 added the `misses`
// line. Older files are treated as foreign (resume restarts from scratch,
// which is always safe).
const CLUSTER_CKPT_HEADER: &str = "lax-bench-cluster-checkpoint v3";

/// Crash-safe store of finished cluster cells, keyed by the scenario's
/// string form — the fleet counterpart of [`crate::Checkpoint`]. Reports
/// persist as their summary scalars plus the latency sketch's raw buckets,
/// so a resumed grid reproduces its output byte-identically without
/// storing a million per-job records.
///
/// Every [`ClusterCheckpoint::record`] rewrites the file via
/// write-to-temporary + atomic rename, so a crash mid-write leaves the
/// previous consistent snapshot.
#[derive(Debug)]
pub struct ClusterCheckpoint {
    path: PathBuf,
    cells: BTreeMap<String, ClusterReport>,
}

impl ClusterCheckpoint {
    /// Opens (or starts) a checkpoint at `path`. A missing, foreign or
    /// corrupt file yields an empty checkpoint — resuming is best-effort,
    /// never an error.
    pub fn open(path: impl Into<PathBuf>) -> ClusterCheckpoint {
        let path = path.into();
        let cells = fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_checkpoint(&text))
            .unwrap_or_default();
        ClusterCheckpoint { path, cells }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The stored report for a scenario key, if present.
    pub fn get(&self, key: &str) -> Option<&ClusterReport> {
        self.cells.get(key)
    }

    /// Whether `key` is already stored.
    pub fn contains(&self, key: &str) -> bool {
        self.cells.contains_key(key)
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Stores one finished cell and flushes the file atomically.
    ///
    /// # Errors
    ///
    /// [`BenchError::Io`] if the file cannot be written.
    pub fn record(&mut self, key: &str, report: &ClusterReport) -> Result<(), BenchError> {
        self.cells.insert(key.to_string(), report.clone());
        self.flush()
    }

    /// Removes the backing file (kept-state is gone; the in-memory cells
    /// survive). Used after a grid completes successfully.
    ///
    /// # Errors
    ///
    /// [`BenchError::Io`] on filesystem failure other than the file already
    /// being gone.
    pub fn discard_file(&self) -> Result<(), BenchError> {
        match fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(BenchError::Io(e.to_string())),
        }
    }

    fn flush(&self) -> Result<(), BenchError> {
        let io = |e: std::io::Error| BenchError::Io(e.to_string());
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(io)?;
            }
        }
        let mut text = String::new();
        text.push_str(CLUSTER_CKPT_HEADER);
        text.push('\n');
        for (key, report) in &self.cells {
            write_cell(&mut text, key, report);
        }
        let tmp = self.path.with_extension("tmp");
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(text.as_bytes()).map_err(io)?;
        f.sync_all().map_err(io)?;
        fs::rename(&tmp, &self.path).map_err(io)
    }
}

fn f64_hex(x: f64) -> String {
    format!("{:x}", x.to_bits())
}

fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Appends formatted text to a `String`. `fmt::Write` on `String` cannot
/// fail, so this absorbs the `fmt::Result` that would otherwise demand an
/// `.unwrap()` per line of checkpoint output.
fn push_fmt(text: &mut String, args: fmt::Arguments<'_>) {
    use fmt::Write as _;
    let _ = text.write_fmt(args);
}

fn write_cell(text: &mut String, key: &str, r: &ClusterReport) {
    let (counts, zeros, sum, min, max) = r.latency_us.raw_parts();
    push_fmt(text, format_args!("cell {key}\n"));
    push_fmt(text, format_args!("fidelity {}\n", r.fidelity));
    push_fmt(
        text,
        format_args!(
            "summary {} {} {} {} {} {} {} {} {} {}\n",
            r.total,
            r.rejected,
            r.device_rejected,
            r.completed,
            r.met,
            r.lost,
            r.retried,
            r.shed,
            r.makespan.as_cycles(),
            r.events
        ),
    );
    text.push_str("misses");
    for cause in MissCause::ALL {
        push_fmt(text, format_args!(" {}", r.misses.count(cause)));
    }
    text.push('\n');
    text.push_str("devices");
    for c in &r.per_device_jobs {
        push_fmt(text, format_args!(" {c}"));
    }
    text.push('\n');
    push_fmt(
        text,
        format_args!("sketch {} {} {} {}\n", zeros, f64_hex(sum), f64_hex(min), f64_hex(max)),
    );
    text.push_str("buckets");
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            push_fmt(text, format_args!(" {i}:{c}"));
        }
    }
    text.push('\n');
    text.push_str("end\n");
}

fn parse_checkpoint(text: &str) -> Option<BTreeMap<String, ClusterReport>> {
    let mut lines = text.lines();
    if lines.next()? != CLUSTER_CKPT_HEADER {
        return None;
    }
    let mut cells = BTreeMap::new();
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let key = line.strip_prefix("cell ")?;
        let scenario: ClusterScenario = key.parse().ok()?;
        let fidelity: Fidelity = lines.next()?.strip_prefix("fidelity ")?.parse().ok()?;
        let mut summary = lines.next()?.strip_prefix("summary ")?.split(' ');
        let total: u64 = summary.next()?.parse().ok()?;
        let rejected: u64 = summary.next()?.parse().ok()?;
        let device_rejected: u64 = summary.next()?.parse().ok()?;
        let completed: u64 = summary.next()?.parse().ok()?;
        let met: u64 = summary.next()?.parse().ok()?;
        let lost: u64 = summary.next()?.parse().ok()?;
        let retried: u64 = summary.next()?.parse().ok()?;
        let shed: u64 = summary.next()?.parse().ok()?;
        let makespan = Duration::from_cycles(summary.next()?.parse().ok()?);
        let events: u64 = summary.next()?.parse().ok()?;
        let mut misses_parts = lines.next()?.strip_prefix("misses ")?.split(' ');
        let mut misses = MissBreakdown::default();
        for cause in MissCause::ALL {
            misses.add_n(cause, misses_parts.next()?.parse().ok()?);
        }
        let devices_line = lines.next()?.strip_prefix("devices")?;
        let per_device_jobs: Vec<u64> = devices_line
            .split_whitespace()
            .map(|c| c.parse().ok())
            .collect::<Option<_>>()?;
        let mut sk = lines.next()?.strip_prefix("sketch ")?.split(' ');
        let zeros: u64 = sk.next()?.parse().ok()?;
        let sum = f64_from_hex(sk.next()?)?;
        let min = f64_from_hex(sk.next()?)?;
        let max = f64_from_hex(sk.next()?)?;
        let buckets_line = lines.next()?.strip_prefix("buckets")?;
        let mut counts = Vec::new();
        for pair in buckets_line.split_whitespace() {
            let (i, c) = pair.split_once(':')?;
            let i: usize = i.parse().ok()?;
            let c: u64 = c.parse().ok()?;
            if i >= counts.len() {
                counts.resize(i + 1, 0);
            }
            counts[i] = c;
        }
        if lines.next()? != "end" {
            return None;
        }
        let latency_us = StreamingQuantiles::from_raw_parts(counts, zeros, sum, min, max);
        cells.insert(
            key.to_string(),
            ClusterReport {
                scenario,
                fidelity,
                total,
                rejected,
                device_rejected,
                completed,
                met,
                lost,
                retried,
                shed,
                misses,
                latency_us,
                per_device_jobs,
                makespan,
                events,
            },
        );
    }
    Some(cells)
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    fn scen(policy: &str) -> ClusterScenario {
        ClusterScenario::new(policy, Benchmark::Hybrid, ArrivalRate::High, 4, 400, 7)
    }

    #[test]
    fn cluster_scenario_round_trips_through_strings() {
        for s in [
            ClusterScenario::new("LL", Benchmark::Hybrid, ArrivalRate::High, 16, 1_000_000, 20210301),
            ClusterScenario::new("RR", Benchmark::Ipv6, ArrivalRate::Low, 1, 1, 0),
            ClusterScenario::new("P2C", Benchmark::Stem, ArrivalRate::Medium, 64, 12, u64::MAX),
        ] {
            let text = s.to_string();
            assert_eq!(text.parse::<ClusterScenario>().unwrap(), s, "{text}");
        }
    }

    #[test]
    fn cluster_scenario_parse_rejects_malformed_input() {
        for (bad, why) in [
            ("", "1 fields"),
            ("LL", "1 fields"),
            ("LL:HYBRID:high:d16:j128", "5 fields"),
            ("LL:HYBRID:high:d16:j128:s42:f1:x", "8 fields"),
            ("LL:HYBRID:high:d16:j128:s42:x", "bad fault intensity"),
            ("LL:HYBRID:high:d16:j128:s42:f0", "bad fault intensity"),
            ("LL:HYBRID:high:d16:j128:s42:f-1", "bad fault intensity"),
            ("LL:HYBRID:high:d16:j128:s42:fx", "bad fault intensity"),
            ("LL:HYBRID:high:d16:j128:s42:fnan", "bad fault intensity"),
            ("LL:WARP9:high:d16:j128:s42", "WARP9"),
            ("LL:HYBRID:sometimes:d16:j128:s42", "sometimes"),
            ("LL:HYBRID:high:16:j128:s42", "bad device count"),
            ("LL:HYBRID:high:d0:j128:s42", "bad device count"),
            ("LL:HYBRID:high:dx:j128:s42", "bad device count"),
            ("LL:HYBRID:high:d16:128:s42", "bad job count"),
            ("LL:HYBRID:high:d16:j128:42", "bad seed"),
            (":HYBRID:high:d16:j128:s42", "empty policy"),
        ] {
            let err = bad.parse::<ClusterScenario>();
            assert!(err.is_err(), "`{bad}` should not parse");
            let msg = err.unwrap_err().to_string();
            assert!(msg.contains("invalid cluster scenario"), "{msg}");
            assert!(msg.contains(why), "`{bad}` should diagnose `{why}`, got: {msg}");
            assert!(msg.contains(bad), "the error must echo the input: {msg}");
        }
    }

    #[test]
    #[should_panic(expected = "contains ':'")]
    fn cluster_scenario_rejects_colon_in_policy() {
        let _ = ClusterScenario::new("LL:EVIL", Benchmark::Ipv6, ArrivalRate::High, 1, 1, 1);
    }

    #[test]
    fn cell_seeds_pair_policies_but_differ_across_workloads() {
        let a = scen("RR");
        let b = scen("LL");
        assert_eq!(
            a.cell_seed(),
            b.cell_seed(),
            "policies compared on one cell must route identical streams"
        );
        assert_ne!(a.cell_seed(), ClusterScenario { devices: 8, ..a.clone() }.cell_seed());
        assert_ne!(a.cell_seed(), ClusterScenario { n_jobs: 401, ..a.clone() }.cell_seed());
        assert_ne!(a.cell_seed(), ClusterScenario { seed: 8, ..a.clone() }.cell_seed());
        assert_ne!(
            a.cell_seed(),
            ClusterScenario { bench: Benchmark::Gmm, ..a.clone() }.cell_seed()
        );
        assert_ne!(a.device_seed(0), a.device_seed(1));
        assert_eq!(a.device_seed(3), b.device_seed(3), "device seeds are policy-blind");
    }

    #[test]
    fn fast_cluster_is_bit_identical_across_worker_counts() {
        for policy in routing::names() {
            let s = scen(policy);
            let one = ClusterBuilder::new(s.clone()).workers(1).run().unwrap();
            let eight = ClusterBuilder::new(s).workers(8).run().unwrap();
            assert_eq!(one, eight, "{policy}: reports must not depend on worker count");
        }
    }

    #[test]
    fn fast_tier_accounting_identity_holds() {
        let r = ClusterBuilder::new(scen("LL")).run().unwrap();
        assert_eq!(r.completed + r.rejected, r.total);
        assert_eq!(r.latency_us.len() as u64, r.completed);
        assert_eq!(r.per_device_jobs.iter().sum::<u64>() + r.rejected, r.total);
        assert_eq!(r.per_device_jobs.len(), r.scenario.devices);
        assert!(r.met <= r.completed);
        assert!((0.0..=1.0).contains(&r.attainment()));
        assert!(r.events > 0);
    }

    /// An overloaded fleet (one slot per device at the high HYBRID rate):
    /// deadline-aware routing must beat deadline-blind round-robin, and its
    /// admission test must actually fire. This is the paper's claim at
    /// cluster scope.
    #[test]
    fn least_laxity_beats_round_robin_when_overloaded() {
        let run = |policy: &str| {
            let s = ClusterScenario::new(policy, Benchmark::Hybrid, ArrivalRate::High, 4, 2000, 7);
            ClusterBuilder::new(s).slots(1).run().unwrap()
        };
        let rr = run("RR");
        let ll = run("LL");
        assert!(ll.rejected > 0, "LL's front-door admission must fire under overload");
        assert!(
            ll.met > rr.met,
            "LL ({} met) must beat RR ({} met) under overload",
            ll.met,
            rr.met
        );
    }

    struct DecisionCounter {
        routed: u64,
        rejected: u64,
    }

    impl Observer<ProbeEvent> for DecisionCounter {
        fn on_event(&mut self, _at: Cycle, event: &ProbeEvent) {
            match event {
                ProbeEvent::JobRouted { .. } => self.routed += 1,
                ProbeEvent::JobRejected { .. } => self.rejected += 1,
                _ => {}
            }
        }
    }

    #[test]
    fn router_probes_cover_every_job_and_do_not_perturb() {
        let s = scen("LL");
        let plain = ClusterBuilder::new(s.clone()).run().unwrap();
        let counter = Arc::new(Mutex::new(DecisionCounter { routed: 0, rejected: 0 }));
        let observed = ClusterBuilder::new(s).observe(counter.clone()).run().unwrap();
        assert_eq!(plain, observed, "observers must not perturb the cluster report");
        let c = counter.lock().unwrap();
        assert_eq!(c.routed + c.rejected, observed.total);
        assert_eq!(c.rejected, observed.rejected);
    }

    #[test]
    fn detailed_tier_runs_full_simulations_per_device() {
        let s = ClusterScenario::new("LOW", Benchmark::Ipv6, ArrivalRate::Low, 2, 12, 3);
        let r = ClusterBuilder::new(s).fidelity(Fidelity::Detailed).run().unwrap();
        assert_eq!(r.fidelity, Fidelity::Detailed);
        assert_eq!(r.completed + r.rejected + r.device_rejected, r.total);
        assert_eq!(r.latency_us.len() as u64, r.completed);
        assert!(r.met > 0, "a low-rate IPV6 cell must meet deadlines");
        assert!(
            r.events > 2 * r.total,
            "detailed devices process real event streams, got {}",
            r.events
        );
    }

    #[test]
    fn unknown_policy_and_scheduler_are_typed_errors() {
        let err = ClusterBuilder::new(scen("WARP")).run().unwrap_err();
        match &err {
            BenchError::UnknownPolicy(e) => assert_eq!(e.name(), "WARP"),
            other => panic!("expected UnknownPolicy, got {other:?}"),
        }
        assert!(err.to_string().contains("WARP"));
        let s = ClusterScenario::new("RR", Benchmark::Ipv6, ArrivalRate::Low, 2, 4, 3);
        let err = ClusterBuilder::new(s)
            .fidelity(Fidelity::Detailed)
            .device_scheduler("NOPE")
            .run()
            .unwrap_err();
        assert!(matches!(err, BenchError::UnknownScheduler(_)), "{err:?}");
    }

    #[test]
    fn cluster_table_reports_policies_and_tail_tiers() {
        let reports: Vec<ClusterReport> =
            ["RR", "LL"].iter().map(|p| ClusterBuilder::new(scen(p)).run().unwrap()).collect();
        let text = cluster_table(&reports).render();
        for needle in ["policy", "attain", "p99_us", "p999_us", "RR", "LL", "HYBRID:high"] {
            assert!(text.contains(needle), "table must mention {needle}:\n{text}");
        }
    }

    #[test]
    fn checkpoint_round_trips_reports_exactly() {
        let dir = std::env::temp_dir().join(format!("lax-cluster-ckpt-{}", std::process::id()));
        let path = dir.join("cluster.ckpt");
        let _ = fs::remove_file(&path);
        let mut ckpt = ClusterCheckpoint::open(&path);
        assert!(ckpt.is_empty());
        let reports: Vec<ClusterReport> =
            ["RR", "LL"].iter().map(|p| ClusterBuilder::new(scen(p)).run().unwrap()).collect();
        for r in &reports {
            ckpt.record(&r.scenario.to_string(), r).unwrap();
        }
        let reopened = ClusterCheckpoint::open(&path);
        assert_eq!(reopened.len(), 2);
        for r in &reports {
            let key = r.scenario.to_string();
            assert!(reopened.contains(&key));
            assert_eq!(reopened.get(&key).unwrap(), r, "{key} must round-trip bit-exactly");
        }
        ckpt.discard_file().unwrap();
        assert!(ClusterCheckpoint::open(&path).is_empty());
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn fault_scenarios_round_trip_through_strings() {
        for (milli, text) in [
            (1000, "LL:HYBRID:high:d4:j400:s7:f1"),
            (1500, "LL:HYBRID:high:d4:j400:s7:f1.5"),
            (1, "LL:HYBRID:high:d4:j400:s7:f0.001"),
            (2000, "LL:HYBRID:high:d4:j400:s7:f2"),
        ] {
            let s = scen("LL").with_fault_milli(milli);
            assert_eq!(s.to_string(), text);
            assert_eq!(text.parse::<ClusterScenario>().unwrap(), s, "{text}");
        }
        // Intensity is part of the cell identity for the *fault* seed but
        // not the workload seed: arrival streams stay paired across
        // intensities so robustness comparisons isolate the faults.
        let base = scen("LL");
        let faulty = scen("LL").with_fault_milli(1000);
        assert_eq!(base.cell_seed(), faulty.cell_seed());
        assert_ne!(faulty.fault_seed(), scen("LL").with_fault_milli(2000).fault_seed());
        assert_eq!(faulty.fault_seed(), scen("RR").with_fault_milli(1000).fault_seed());
    }

    /// A plan whose only entry is a factor-1.0 straggler forces the chaos
    /// engine (the plan is non-empty) while perturbing nothing — the
    /// strictest check that the engine's arithmetic mirrors the fault-free
    /// path bit for bit.
    #[test]
    fn noop_fault_plan_is_bit_identical_to_fault_free_run() {
        let noop = FleetFaultPlan {
            stragglers: vec![StragglerWindow {
                device: 0,
                at: Cycle::ZERO,
                until: Cycle::MAX,
                factor: 1.0,
            }],
            ..FleetFaultPlan::none()
        };
        for policy in routing::names() {
            let s = scen(policy);
            let plain = ClusterBuilder::new(s.clone()).run().unwrap();
            let chaos = ClusterBuilder::new(s).fleet_faults(noop.clone()).run().unwrap();
            assert_eq!(plain, chaos, "{policy}: a no-op plan must not change the report");
        }
    }

    #[test]
    fn intensity_zero_never_engages_the_chaos_engine() {
        let s = scen("LL").with_fault_milli(0);
        assert_eq!(
            ClusterBuilder::new(s).run().unwrap(),
            ClusterBuilder::new(scen("LL")).run().unwrap()
        );
    }

    /// A crash window over the middle of the stream on half the fleet.
    /// Spans derive from the actual arrival stream so losses are
    /// guaranteed, not luck.
    fn mid_stream_crash(s: &ClusterScenario) -> FleetFaultPlan {
        let jobs = generate_cluster_jobs(s, BenchmarkSuite::calibrated());
        let span = jobs.last().unwrap().arrival;
        let at = Cycle::from_cycles(span.as_cycles() / 4);
        let until = Cycle::from_cycles(span.as_cycles() / 2);
        FleetFaultPlan {
            crashes: vec![
                DeviceCrash { device: 0, at, until },
                DeviceCrash { device: 1, at, until },
            ],
            ..FleetFaultPlan::none()
        }
    }

    #[test]
    fn crashes_conserve_jobs_and_retries_recover_work() {
        let s = scen("RR");
        let plan = mid_stream_crash(&s);
        let r = ClusterBuilder::new(s.clone()).fleet_faults(plan.clone()).run().unwrap();
        assert_eq!(
            r.completed + r.rejected + r.shed + r.lost,
            r.total,
            "every job must be completed, rejected, shed or lost"
        );
        assert_eq!(r.latency_us.len() as u64, r.completed);
        assert!(r.retried > 0, "crash-lost jobs must re-enter the front door");
        assert!(r.met < r.total, "losing half the fleet mid-stream must cost deadlines");

        // Retry disabled: the same crashes turn recoveries into losses.
        let no_retry =
            ClusterBuilder::new(s).fleet_faults(plan).retry_budget(0).run().unwrap();
        assert_eq!(no_retry.retried, 0);
        assert!(no_retry.lost > 0, "with no retry budget, crash-lost jobs stay lost");
        assert_eq!(
            no_retry.completed + no_retry.rejected + no_retry.shed + no_retry.lost,
            no_retry.total
        );
        assert!(no_retry.completed < r.completed, "retries must recover real work");
    }

    #[test]
    fn chaos_runs_are_bit_identical_across_worker_counts() {
        for policy in routing::names() {
            let s = scen(policy).with_fault_milli(1500);
            let one = ClusterBuilder::new(s.clone()).workers(1).run().unwrap();
            let eight = ClusterBuilder::new(s).workers(8).run().unwrap();
            assert_eq!(one, eight, "{policy}: chaos reports must not depend on worker count");
        }
    }

    #[derive(Default)]
    struct ChaosCounter {
        down: u64,
        crashed: u64,
        restored: u64,
        retried: u64,
        shed: u64,
        rejected: u64,
    }

    impl Observer<ProbeEvent> for ChaosCounter {
        fn on_event(&mut self, _at: Cycle, event: &ProbeEvent) {
            match event {
                ProbeEvent::DeviceDown { crashed, .. } => {
                    self.down += 1;
                    self.crashed += u64::from(*crashed);
                }
                ProbeEvent::DeviceRestored { .. } => self.restored += 1,
                ProbeEvent::JobRetried { .. } => self.retried += 1,
                ProbeEvent::JobShed { .. } => self.shed += 1,
                ProbeEvent::JobRejected { .. } => self.rejected += 1,
                _ => {}
            }
        }
    }

    #[test]
    fn chaos_probes_cover_failure_events_and_do_not_perturb() {
        let s = scen("LL");
        let plan = mid_stream_crash(&s);
        let plain = ClusterBuilder::new(s.clone()).fleet_faults(plan.clone()).run().unwrap();
        let counter = Arc::new(Mutex::new(ChaosCounter::default()));
        let observed = ClusterBuilder::new(s)
            .fleet_faults(plan)
            .observe(counter.clone())
            .run()
            .unwrap();
        assert_eq!(plain, observed, "observers must not perturb the chaos report");
        let c = counter.lock().unwrap();
        assert_eq!(c.down, 2, "both crash windows must be announced");
        assert_eq!(c.crashed, 2);
        assert_eq!(c.restored, 2, "both devices must return to rotation");
        assert_eq!(c.retried, observed.retried);
        assert_eq!(c.shed, observed.shed);
        assert_eq!(c.rejected, observed.rejected);
    }

    /// RR never rejects, so under a 3-of-4-devices-down window with one
    /// slot each, shedding is the only pressure valve — and it must fire
    /// only when enabled.
    #[test]
    fn shedding_under_degraded_capacity_is_opt_in() {
        let s = ClusterScenario::new("RR", Benchmark::Hybrid, ArrivalRate::High, 4, 2000, 7);
        let jobs = generate_cluster_jobs(&s, BenchmarkSuite::calibrated());
        let span = jobs.last().unwrap().arrival;
        let at = Cycle::from_cycles(span.as_cycles() / 8);
        let until = Cycle::from_cycles(span.as_cycles() * 7 / 8);
        let plan = FleetFaultPlan {
            outages: vec![CorrelatedOutage { first: 1, count: 3, at, until }],
            ..FleetFaultPlan::none()
        };
        let build = |shed| {
            ClusterBuilder::new(s.clone())
                .slots(1)
                .fleet_faults(plan.clone())
                .shed_degraded(shed)
                .run()
                .unwrap()
        };
        let keep = build(false);
        assert_eq!(keep.shed, 0);
        let shedding = build(true);
        assert!(shedding.shed > 0, "an overloaded survivor must shed hopeless jobs");
        assert_eq!(
            shedding.completed + shedding.rejected + shedding.shed + shedding.lost,
            shedding.total
        );
    }

    #[test]
    fn detailed_chaos_conserves_jobs_across_both_phases() {
        let s = ClusterScenario::new("LOW", Benchmark::Ipv6, ArrivalRate::Low, 2, 24, 3);
        let jobs = generate_cluster_jobs(&s, BenchmarkSuite::calibrated());
        let span = jobs.last().unwrap().arrival;
        let plan = FleetFaultPlan {
            crashes: vec![DeviceCrash {
                device: 0,
                at: Cycle::from_cycles(span.as_cycles() / 4),
                until: Cycle::from_cycles(span.as_cycles() / 2),
            }],
            ..FleetFaultPlan::none()
        };
        let r = ClusterBuilder::new(s)
            .fidelity(Fidelity::Detailed)
            .fleet_faults(plan)
            .run()
            .unwrap();
        assert_eq!(r.fidelity, Fidelity::Detailed);
        assert_eq!(
            r.completed + r.rejected + r.device_rejected + r.shed + r.lost,
            r.total,
            "phase-2 simulations must account for every surviving booking"
        );
        assert_eq!(r.latency_us.len() as u64, r.completed);
        assert!(r.completed > 0);
    }

    #[test]
    fn chaos_checkpoint_round_trips_failure_counters() {
        let dir = std::env::temp_dir().join(format!("lax-chaos-ckpt-{}", std::process::id()));
        let path = dir.join("chaos.ckpt");
        let _ = fs::remove_file(&path);
        let s = scen("RR").with_fault_milli(1500);
        let r = ClusterBuilder::new(s).run().unwrap();
        let mut ckpt = ClusterCheckpoint::open(&path);
        ckpt.record(&r.scenario.to_string(), &r).unwrap();
        let reopened = ClusterCheckpoint::open(&path);
        assert_eq!(
            reopened.get(&r.scenario.to_string()).unwrap(),
            &r,
            "lost/retried/shed must survive the checkpoint round trip"
        );
        ckpt.discard_file().unwrap();
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn chaos_table_reports_failure_columns() {
        let s = scen("RR");
        let plan = mid_stream_crash(&s);
        let r = ClusterBuilder::new(s.clone()).fleet_faults(plan).run().unwrap();
        let text = chaos_table(&[r]).render();
        for needle in ["shed", "lost", "retried", "attain", "RR", "HYBRID:high"] {
            assert!(text.contains(needle), "table must mention {needle}:\n{text}");
        }
        // The intensity column reflects the scenario, not the override.
        let seeded = ClusterBuilder::new(s.with_fault_milli(1500)).run().unwrap();
        assert!(chaos_table(&[seeded]).render().contains("1.5"));
    }

    #[test]
    fn foreign_checkpoint_files_are_ignored() {
        let dir = std::env::temp_dir().join(format!("lax-cluster-foreign-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.ckpt");
        fs::write(&path, "not a checkpoint\ncell garbage\n").unwrap();
        assert!(ClusterCheckpoint::open(&path).is_empty());
        // Pre-miss-attribution files (v2 header) are foreign too: the
        // parser must not guess at a missing `misses` line.
        fs::write(&path, "lax-bench-cluster-checkpoint v2\ncell LL:HYBRID:high:d4:j400:s7\n")
            .unwrap();
        assert!(ClusterCheckpoint::open(&path).is_empty(), "v2 files must restart from scratch");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(&dir);
    }

    /// Checks every conservation identity [`MissBreakdown`] documents
    /// against the report's own counters.
    fn assert_attribution_conserves(r: &ClusterReport) {
        let m = &r.misses;
        assert_eq!(m.count(MissCause::FrontDoorReject), r.rejected, "front-door identity");
        assert_eq!(m.count(MissCause::DeviceReject), r.device_rejected, "device-reject identity");
        assert_eq!(
            m.count(MissCause::QueueingDelay) + m.count(MissCause::ServiceTime),
            r.completed - r.met,
            "every late completion splits into queueing vs service"
        );
        assert_eq!(
            m.count(MissCause::CrashLoss) + m.count(MissCause::RetryExhausted),
            r.lost,
            "every final loss is a crash loss or a retry exhaustion"
        );
        assert_eq!(m.count(MissCause::Shed), r.shed, "shed identity");
        assert_eq!(m.total(), r.total - r.met, "exactly one cause per non-met job");
    }

    #[test]
    fn miss_attribution_conserves_exactly_in_fast_tier() {
        for policy in routing::names() {
            let plain = ClusterBuilder::new(scen(policy)).run().unwrap();
            assert_attribution_conserves(&plain);
            let chaos = ClusterBuilder::new(scen(policy).with_fault_milli(1500))
                .retry_budget(1)
                .shed_degraded(true)
                .run()
                .unwrap();
            assert_attribution_conserves(&chaos);
            assert!(
                chaos.misses.total() > 0,
                "{policy}: heavy faults at the high rate must cost deadlines"
            );
        }
    }

    #[test]
    fn miss_attribution_conserves_exactly_in_detailed_tier() {
        let plain = ClusterBuilder::new(ClusterScenario::new(
            "LL",
            Benchmark::Ipv6,
            ArrivalRate::High,
            2,
            24,
            3,
        ))
        .fidelity(Fidelity::Detailed)
        .run()
        .unwrap();
        assert_attribution_conserves(&plain);
        let s = ClusterScenario::new("LOW", Benchmark::Ipv6, ArrivalRate::Low, 2, 24, 3);
        let jobs = generate_cluster_jobs(&s, BenchmarkSuite::calibrated());
        let span = jobs.last().unwrap().arrival;
        let plan = FleetFaultPlan {
            crashes: vec![DeviceCrash {
                device: 0,
                at: Cycle::from_cycles(span.as_cycles() / 4),
                until: Cycle::from_cycles(span.as_cycles() / 2),
            }],
            ..FleetFaultPlan::none()
        };
        let chaos = ClusterBuilder::new(s)
            .fidelity(Fidelity::Detailed)
            .fleet_faults(plan)
            .run()
            .unwrap();
        assert_attribution_conserves(&chaos);
    }

    /// Counts outcome events and checks the post-merge stream's ordering
    /// contract (completion timestamps non-decreasing).
    #[derive(Default)]
    struct OutcomeAudit {
        completed: u64,
        met: u64,
        misses: MissBreakdown,
        prev_completion: Option<Cycle>,
        unsorted: bool,
    }

    impl Observer<ProbeEvent> for OutcomeAudit {
        fn on_event(&mut self, at: Cycle, event: &ProbeEvent) {
            match event {
                ProbeEvent::JobCompleted { met, .. } => {
                    self.completed += 1;
                    self.met += u64::from(*met);
                    if self.prev_completion.is_some_and(|prev| at < prev) {
                        self.unsorted = true;
                    }
                    self.prev_completion = Some(at);
                }
                ProbeEvent::JobMissed { cause, .. } => self.misses.add(*cause),
                _ => {}
            }
        }
    }

    #[test]
    fn fleet_observers_never_perturb_and_outcome_events_reconcile() {
        for policy in routing::names() {
            for fault in [0, 1500] {
                let s = scen(policy).with_fault_milli(fault);
                let build = || {
                    ClusterBuilder::new(s.clone()).retry_budget(1).shed_degraded(true)
                };
                let bare = build().workers(1).run().unwrap();
                let sampler = Arc::new(Mutex::new(FleetSampler::new()));
                let tracer = Arc::new(Mutex::new(FleetTraceWriter::new()));
                let audit = Arc::new(Mutex::new(OutcomeAudit::default()));
                let observed = build()
                    .workers(8)
                    .observe(sampler.clone())
                    .observe(tracer.clone())
                    .observe(audit.clone())
                    .run()
                    .unwrap();
                assert_eq!(
                    bare, observed,
                    "{policy}/f{fault}: observers and worker count must not change the report"
                );
                let a = audit.lock().unwrap();
                assert!(!a.unsorted, "{policy}/f{fault}: completions must arrive time-sorted");
                assert_eq!(a.completed, observed.completed);
                assert_eq!(a.met, observed.met);
                assert_eq!(
                    a.misses, observed.misses,
                    "{policy}/f{fault}: probe misses must mirror the report breakdown"
                );
                let sam = sampler.lock().unwrap();
                assert_eq!(sam.misses(), &observed.misses);
                assert!(sam.to_csv().lines().count() > 1);
                sim_core::json::validate(&sam.to_json()).unwrap();
                sim_core::json::validate(&tracer.lock().unwrap().finish()).unwrap();
            }
        }
    }

    #[test]
    fn detailed_chaos_outcome_events_match_both_phases() {
        let s = ClusterScenario::new("LOW", Benchmark::Ipv6, ArrivalRate::Low, 2, 24, 3);
        let jobs = generate_cluster_jobs(&s, BenchmarkSuite::calibrated());
        let span = jobs.last().unwrap().arrival;
        let plan = FleetFaultPlan {
            crashes: vec![DeviceCrash {
                device: 0,
                at: Cycle::from_cycles(span.as_cycles() / 4),
                until: Cycle::from_cycles(span.as_cycles() / 2),
            }],
            ..FleetFaultPlan::none()
        };
        let build = || {
            ClusterBuilder::new(s.clone()).fidelity(Fidelity::Detailed).fleet_faults(plan.clone())
        };
        let bare = build().run().unwrap();
        let audit = Arc::new(Mutex::new(OutcomeAudit::default()));
        let observed = build().observe(audit.clone()).run().unwrap();
        assert_eq!(bare, observed, "detailed-tier observers must not perturb either phase");
        let a = audit.lock().unwrap();
        assert_eq!(a.completed, observed.completed, "one JobCompleted per phase-2 completion");
        assert_eq!(a.misses, observed.misses);
    }
}
