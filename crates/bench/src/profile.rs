//! Per-cell wall-clock profiling for the fleet sweeps (`bin/cluster` and
//! `bin/chaos`), mirroring what [`crate::runner::ResultsDb::throughput_json`]
//! does for the single-device grid: a machine-readable
//! `results/BENCH_cluster.json` shared by both sweeps (read-modify-write, so
//! each binary preserves the other's cells) plus a slowest-cells section
//! upserted between marker lines in `results/SUMMARY.txt`.

use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

use sim_core::json;
use sim_core::stats::geomean;
use sim_core::table::{fmt_f, Table};

/// One profiled sweep cell: identity plus the measured cost.
#[derive(Debug, Clone)]
struct FleetCell {
    sweep: String,
    scenario: String,
    jobs: u64,
    events: u64,
    wall_ns: u128,
}

impl FleetCell {
    /// Jobs routed per wall-clock second; 0 when the cell took no
    /// measurable time (restored cells are never recorded at all).
    fn jobs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.jobs as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Accumulates per-cell timings for one fleet sweep and renders the two
/// profiling artifacts. Restored-from-checkpoint cells are expected to be
/// skipped by the caller — their wall-clock would measure the parser, not
/// the simulation.
#[derive(Debug)]
pub struct FleetProfile {
    sweep: String,
    cells: Vec<FleetCell>,
}

impl FleetProfile {
    /// New empty profile for the named sweep (`"cluster"` or `"chaos"`).
    pub fn new(sweep: &str) -> Self {
        Self { sweep: sweep.to_string(), cells: Vec::new() }
    }

    /// Records one executed cell.
    pub fn record(&mut self, scenario: &str, jobs: u64, events: u64, wall: Duration) {
        self.cells.push(FleetCell {
            sweep: self.sweep.clone(),
            scenario: scenario.to_string(),
            jobs,
            events,
            wall_ns: wall.as_nanos(),
        });
    }

    /// `true` when no cell was executed (everything restored, or the sweep
    /// was empty) — callers should then leave both artifacts untouched.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Merges this sweep's cells into an existing `BENCH_cluster.json`
    /// document, preserving every cell recorded by *other* sweeps and
    /// replacing this sweep's. Pass `None` (or an unparseable document) to
    /// start fresh. The geomean covers all surviving cells.
    pub fn merged_json(&self, existing: Option<&str>) -> String {
        let mut cells: Vec<FleetCell> = Vec::new();
        if let Some(Ok(doc)) = existing.map(json::parse) {
            for cell in doc.get("cells").and_then(|c| c.as_array()).unwrap_or(&[]) {
                let sweep = cell.get("sweep").and_then(|v| v.as_str()).unwrap_or("");
                if sweep == self.sweep || sweep.is_empty() {
                    continue;
                }
                let num = |key: &str| cell.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
                cells.push(FleetCell {
                    sweep: sweep.to_string(),
                    scenario: cell
                        .get("scenario")
                        .and_then(|v| v.as_str())
                        .unwrap_or("")
                        .to_string(),
                    jobs: num("jobs") as u64,
                    events: num("events") as u64,
                    wall_ns: num("wall_ns") as u128,
                });
            }
        }
        cells.extend(self.cells.iter().cloned());
        cells.sort_by(|a, b| (&a.sweep, &a.scenario).cmp(&(&b.sweep, &b.scenario)));
        let rates: Vec<f64> =
            cells.iter().map(FleetCell::jobs_per_sec).filter(|&r| r > 0.0).collect();
        let mut out = String::from("{\n  \"cells\": [\n");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    {\"sweep\": \"");
            json::escape_into(&mut out, &cell.sweep);
            out.push_str("\", \"scenario\": \"");
            json::escape_into(&mut out, &cell.scenario);
            out.push_str(&format!(
                "\", \"jobs\": {}, \"events\": {}, \"wall_ns\": {}, \"jobs_per_sec\": {:.3}}}",
                cell.jobs,
                cell.events,
                cell.wall_ns,
                cell.jobs_per_sec()
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"geomean_jobs_per_sec\": {:.3}\n}}\n",
            geomean(&rates)
        ));
        debug_assert!(json::validate(&out).is_ok());
        out
    }

    /// Renders this sweep's slowest-`n`-cells section, bracketed by the
    /// marker lines [`Self::upsert`] keys on.
    pub fn summary_section(&self, n: usize) -> String {
        let total_wall: u128 = self.cells.iter().map(|c| c.wall_ns).sum();
        let total_jobs: u64 = self.cells.iter().map(|c| c.jobs).sum();
        let mut sorted: Vec<&FleetCell> = self.cells.iter().collect();
        sorted.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then_with(|| a.scenario.cmp(&b.scenario)));
        sorted.truncate(n);
        let mut t = Table::with_columns(&["scenario", "wall (s)", "jobs", "jobs/sec", "events"]);
        for cell in sorted {
            t.row(vec![
                cell.scenario.clone(),
                fmt_f(cell.wall_ns as f64 / 1e9, 2),
                cell.jobs.to_string(),
                fmt_f(cell.jobs_per_sec(), 0),
                cell.events.to_string(),
            ]);
        }
        format!(
            "{}\n{} sweep profile: {} cell(s), {:.2}s total cell wall-clock, {} job(s) routed\n\nslowest cells\n\n{}{}\n",
            Self::begin_marker(&self.sweep),
            self.sweep,
            self.cells.len(),
            total_wall as f64 / 1e9,
            total_jobs,
            t.render(),
            Self::end_marker(&self.sweep),
        )
    }

    fn begin_marker(sweep: &str) -> String {
        format!("== fleet profile: {sweep} ==")
    }

    fn end_marker(sweep: &str) -> String {
        format!("== end fleet profile: {sweep} ==")
    }

    /// Replaces this sweep's marker-delimited section in `existing` (or
    /// appends one), leaving everything else — including the other sweep's
    /// section — byte-identical. Idempotent: upserting the same section
    /// twice yields the same document.
    pub fn upsert(&self, existing: &str, section: &str) -> String {
        upsert_section(
            existing,
            &Self::begin_marker(&self.sweep),
            &Self::end_marker(&self.sweep),
            section,
        )
    }

    /// Writes both artifacts under `results_dir`: merges this sweep's cells
    /// into `BENCH_cluster.json` and upserts the slowest-cells section into
    /// `SUMMARY.txt`. No-op when nothing was recorded.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from reading or writing either file.
    pub fn write_artifacts(&self, results_dir: &Path, n: usize) -> io::Result<()> {
        if self.is_empty() {
            return Ok(());
        }
        fs::create_dir_all(results_dir)?;
        let json_path = results_dir.join("BENCH_cluster.json");
        let existing = fs::read_to_string(&json_path).ok();
        fs::write(&json_path, self.merged_json(existing.as_deref()))?;
        let summary_path = results_dir.join("SUMMARY.txt");
        let existing = fs::read_to_string(&summary_path).unwrap_or_default();
        fs::write(&summary_path, self.upsert(&existing, &self.summary_section(n)))?;
        Ok(())
    }
}

/// Replaces the `begin`..`end` marker-delimited section of `existing` with
/// `section` (which must carry its own markers), or appends it when absent,
/// leaving every other byte of the document untouched. Idempotent. Shared
/// by the fleet profiles and `benchdiff`'s delta table.
pub fn upsert_section(existing: &str, begin: &str, end: &str, section: &str) -> String {
    if let Some(start) = existing.find(begin) {
        let tail = &existing[start..];
        let stop = tail
            .find(end)
            .map_or(existing.len(), |e| start + e + end.len() + 1)
            .min(existing.len());
        let mut out = existing[..start].to_string();
        out.push_str(section);
        out.push_str(&existing[stop..]);
        return out;
    }
    let mut out = existing.to_string();
    if !out.is_empty() && !out.ends_with("\n\n") {
        out.push('\n');
    }
    out.push_str(section);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sweep: &str) -> FleetProfile {
        let mut p = FleetProfile::new(sweep);
        p.record("LL:HYBRID:high:d4:j400:s7", 400, 9000, Duration::from_millis(20));
        p.record("RR:HYBRID:high:d4:j400:s7", 400, 8000, Duration::from_millis(50));
        p
    }

    #[test]
    fn merged_json_validates_and_keeps_other_sweeps() {
        let cluster = sample("cluster").merged_json(None);
        json::validate(&cluster).unwrap();
        let both = sample("chaos").merged_json(Some(&cluster));
        json::validate(&both).unwrap();
        let doc = json::parse(&both).unwrap();
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 4, "chaos merge must keep the cluster cells");
        // Re-merging one sweep replaces its cells instead of duplicating.
        let again = sample("chaos").merged_json(Some(&both));
        let doc = json::parse(&again).unwrap();
        assert_eq!(doc.get("cells").unwrap().as_array().unwrap().len(), 4);
        assert!(doc.get("geomean_jobs_per_sec").unwrap().as_f64().unwrap() > 0.0);
        // Garbage input degrades to a fresh document.
        let fresh = sample("cluster").merged_json(Some("not json"));
        assert_eq!(json::parse(&fresh).unwrap().get("cells").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn summary_upsert_is_idempotent_and_preserves_other_text() {
        let profile = sample("cluster");
        let section = profile.summary_section(10);
        assert!(section.contains("slowest cells"));
        let base = "experiment summary\n\nsome existing table\n";
        let once = profile.upsert(base, &section);
        assert!(once.starts_with(base));
        assert!(once.contains("== fleet profile: cluster =="));
        let twice = profile.upsert(&once, &section);
        assert_eq!(once, twice, "re-upserting the same section must be a no-op");
        // A second sweep's section coexists without touching the first.
        let chaos = sample("chaos");
        let with_chaos = chaos.upsert(&once, &chaos.summary_section(10));
        assert!(with_chaos.contains("== fleet profile: cluster =="));
        assert!(with_chaos.contains("== fleet profile: chaos =="));
        let reclustered = profile.upsert(&with_chaos, &section);
        assert!(reclustered.contains("== end fleet profile: chaos =="));
    }

    #[test]
    fn slowest_cells_sort_by_wall_clock() {
        let section = sample("cluster").summary_section(1);
        assert!(section.contains("RR:HYBRID"), "the 50ms cell is the slowest");
        assert!(!section.contains("LL:HYBRID"), "truncated to one row");
    }
}
