//! Crash-safe incremental checkpointing of finished sweep cells.
//!
//! Long grids (`bin/all`, `bin/faults`) record every finished cell to a
//! checkpoint file as they go; an interrupted run restarted with
//! `--resume` reloads the file and re-runs only the missing cells. Two
//! properties make this safe to lean on:
//!
//! * **Exact round-trip.** [`SimReport`]s compare bit-exactly across
//!   thread counts, and resumed runs must stay byte-identical to
//!   uninterrupted ones, so every `f64` is stored as the hex of its IEEE
//!   bits ([`f64::to_bits`]) — never through decimal formatting, which
//!   rounds. `restores_reports_bit_exactly` locks this in.
//! * **Crash atomicity.** Each update rewrites the whole file to a
//!   sibling `.tmp` and `rename`s it into place, so a `SIGKILL` at any
//!   instant leaves either the previous complete snapshot or the new one,
//!   never a torn file. (Snapshots are small — a full evaluation is a few
//!   hundred cells of ~130 lines — so rewrite-per-cell is cheap.)
//!
//! Cells are keyed by caller-chosen strings (a [`Scenario`] string form,
//! optionally suffixed, e.g. `LAX:IPV6:high:j128:s42:f0.5` for a fault
//! cell) rather than parsed structs, so one format serves every binary.
//! A file with an unknown header, or any cell block that fails to parse,
//! is silently treated as absent — the worst case is re-running work.
//!
//! [`Scenario`]: crate::sweep::Scenario

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpu_sim::prelude::*;

use crate::sweep::BenchError;

/// First line of every checkpoint file; anything else is ignored wholesale.
/// v2 added the `events` summary field and the optional `profile` line —
/// v1 files are treated as absent (their cells simply re-run).
const HEADER: &str = "lax-bench-checkpoint v2";

/// Per-cell execution profile: how long the cell took to simulate and how
/// many fault-injected retries it needed. Persisted alongside the report so
/// a resumed sweep can still render the slowest-cells table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellProfile {
    /// Wall-clock time spent simulating the cell (including retries).
    pub wall: std::time::Duration,
    /// Extra attempts beyond the first (0 for a clean first run).
    pub retries: u32,
}

impl CellProfile {
    /// Simulated events per wall-clock second, given the cell's report.
    pub fn events_per_sec(&self, report: &SimReport) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            report.events as f64 / secs
        }
    }
}

/// A checkpoint file plus its in-memory view: a map from cell key to the
/// finished [`SimReport`] and (optionally) its [`CellProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    path: PathBuf,
    cells: BTreeMap<String, SimReport>,
    profiles: BTreeMap<String, CellProfile>,
}

impl Checkpoint {
    /// Opens (or prepares to create) the checkpoint at `path`, loading any
    /// cells a previous run left behind. A missing, unreadable or
    /// unrecognized file simply yields an empty checkpoint.
    pub fn open(path: impl Into<PathBuf>) -> Checkpoint {
        let path = path.into();
        let (cells, profiles) = match fs::read_to_string(&path) {
            Ok(text) => parse_file(&text),
            Err(_) => (BTreeMap::new(), BTreeMap::new()),
        };
        Checkpoint { path, cells, profiles }
    }

    /// The file this checkpoint persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The report recorded for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&SimReport> {
        self.cells.get(key)
    }

    /// `true` if `key` has a recorded report.
    pub fn contains(&self, key: &str) -> bool {
        self.cells.contains_key(key)
    }

    /// Iterates over all recorded `(key, report)` cells in key order.
    pub fn cells(&self) -> impl Iterator<Item = (&str, &SimReport)> {
        self.cells.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The execution profile recorded for `key`, if any.
    pub fn profile(&self, key: &str) -> Option<CellProfile> {
        self.profiles.get(key).copied()
    }

    /// Iterates over all recorded `(key, profile)` pairs in key order.
    pub fn profiles(&self) -> impl Iterator<Item = (&str, CellProfile)> {
        self.profiles.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records one finished cell and atomically persists the snapshot.
    ///
    /// # Errors
    ///
    /// [`BenchError::Io`] if the snapshot cannot be written; the in-memory
    /// view still holds the cell, so the sweep can finish regardless.
    pub fn record(&mut self, key: &str, report: &SimReport) -> Result<(), BenchError> {
        self.cells.insert(key.to_string(), report.clone());
        self.profiles.remove(key);
        self.flush()
    }

    /// Like [`Checkpoint::record`], also persisting the cell's execution
    /// profile (wall-clock + retries) for sweep-level profiling.
    ///
    /// # Errors
    ///
    /// [`BenchError::Io`] if the snapshot cannot be written.
    pub fn record_profiled(
        &mut self,
        key: &str,
        report: &SimReport,
        profile: CellProfile,
    ) -> Result<(), BenchError> {
        self.cells.insert(key.to_string(), report.clone());
        self.profiles.insert(key.to_string(), profile);
        self.flush()
    }

    /// Deletes the checkpoint file (kept cells stay in memory). Used once
    /// a run completes so a later fresh run does not resume by accident.
    ///
    /// # Errors
    ///
    /// [`BenchError::Io`] on filesystem failure (a missing file is fine).
    pub fn discard_file(&self) -> Result<(), BenchError> {
        match fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&self.path, &e)),
        }
    }

    /// Rewrites the snapshot: serialize everything to `<path>.tmp`, then
    /// rename over the real file so readers (and crashes) only ever see a
    /// complete snapshot.
    fn flush(&self) -> Result<(), BenchError> {
        let mut text = String::from(HEADER);
        text.push('\n');
        for (key, report) in &self.cells {
            render_cell(&mut text, key, report, self.profiles.get(key).copied());
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
            }
        }
        let tmp = self.path.with_extension("tmp");
        fs::write(&tmp, &text).map_err(|e| io_err(&tmp, &e))?;
        fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, &e))
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> BenchError {
    BenchError::Io(format!("{}: {e}", path.display()))
}

/// Serializes one cell block. Free-text fields (the key, the scheduler
/// name, each job's benchmark label) terminate their lines so embedded
/// spaces survive; every float travels as the hex of its bits.
fn render_cell(out: &mut String, key: &str, r: &SimReport, profile: Option<CellProfile>) {
    let _ = writeln!(out, "cell {key}");
    let _ = writeln!(out, "scheduler {}", r.scheduler);
    let _ = writeln!(
        out,
        "summary {} {:016x} {} {:016x} {:016x} {} {}",
        r.makespan.as_cycles(),
        r.energy_mj.to_bits(),
        r.total_wgs,
        r.l1_hit_rate.to_bits(),
        r.l2_hit_rate.to_bits(),
        r.events,
        r.records.len()
    );
    if let Some(p) = profile {
        // Wall-clock as exact nanoseconds so resumed runs reload the same
        // profile the original run measured.
        let _ = writeln!(out, "profile {:x} {}", p.wall.as_nanos(), p.retries);
    }
    for rec in &r.records {
        let fate = match rec.fate {
            JobFate::Completed(t) => format!("C{}", t.as_cycles()),
            JobFate::Rejected(t) => format!("R{}", t.as_cycles()),
            JobFate::Aborted(t) => format!("A{}", t.as_cycles()),
            JobFate::Unfinished => "U".to_string(),
        };
        let _ = writeln!(
            out,
            "job {} {} {} {} {:016x} {}",
            rec.id.0,
            rec.arrival.as_cycles(),
            rec.deadline_abs.as_cycles(),
            fate,
            rec.wgs_executed.to_bits(),
            rec.bench
        );
    }
    out.push_str("end\n");
}

/// Parses a whole file; malformed cell blocks are dropped, everything else
/// is kept. Returns empty on a bad header.
fn parse_file(text: &str) -> (BTreeMap<String, SimReport>, BTreeMap<String, CellProfile>) {
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return (BTreeMap::new(), BTreeMap::new());
    }
    let mut cells = BTreeMap::new();
    let mut profiles = BTreeMap::new();
    let mut block: Option<(String, Vec<&str>)> = None;
    for line in lines {
        if let Some(key) = line.strip_prefix("cell ") {
            // A `cell` line inside an unterminated block abandons it.
            block = Some((key.to_string(), Vec::new()));
        } else if line == "end" {
            if let Some((key, body)) = block.take() {
                if let Some((report, profile)) = parse_cell(&body) {
                    cells.insert(key.clone(), report);
                    if let Some(p) = profile {
                        profiles.insert(key, p);
                    }
                }
            }
        } else if let Some((_, body)) = block.as_mut() {
            body.push(line);
        }
    }
    (cells, profiles)
}

fn parse_cell(body: &[&str]) -> Option<(SimReport, Option<CellProfile>)> {
    let mut lines = body.iter().peekable();
    let scheduler = lines.next()?.strip_prefix("scheduler ")?.to_string();
    let summary = lines.next()?.strip_prefix("summary ")?;
    let mut s = summary.split(' ');
    let makespan = Duration::from_cycles(s.next()?.parse().ok()?);
    let energy_mj = f64_from_hex(s.next()?)?;
    let total_wgs = s.next()?.parse().ok()?;
    let l1_hit_rate = f64_from_hex(s.next()?)?;
    let l2_hit_rate = f64_from_hex(s.next()?)?;
    let events = s.next()?.parse().ok()?;
    let n_records: usize = s.next()?.parse().ok()?;
    if s.next().is_some() {
        return None;
    }
    let profile = match lines.peek().and_then(|l| l.strip_prefix("profile ")) {
        Some(rest) => {
            lines.next();
            let mut p = rest.split(' ');
            let nanos = u128::from_str_radix(p.next()?, 16).ok()?;
            let retries = p.next()?.parse().ok()?;
            if p.next().is_some() {
                return None;
            }
            Some(CellProfile {
                wall: std::time::Duration::from_nanos(u64::try_from(nanos).ok()?),
                retries,
            })
        }
        None => None,
    };
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let line = lines.next()?.strip_prefix("job ")?;
        // The benchmark label is free text: split off the 5 fixed fields,
        // keep the rest of the line verbatim.
        let mut f = line.splitn(6, ' ');
        let id = JobId(f.next()?.parse().ok()?);
        let arrival = Cycle::from_cycles(f.next()?.parse().ok()?);
        let deadline_abs = Cycle::from_cycles(f.next()?.parse().ok()?);
        let fate = parse_fate(f.next()?)?;
        let wgs_executed = f64_from_hex(f.next()?)?;
        let bench: Arc<str> = Arc::from(f.next()?);
        records.push(JobRecord { id, bench, arrival, deadline_abs, fate, wgs_executed });
    }
    if lines.next().is_some() {
        return None;
    }
    let report = SimReport {
        scheduler,
        records,
        makespan,
        energy_mj,
        total_wgs,
        l1_hit_rate,
        l2_hit_rate,
        events,
    };
    Some((report, profile))
}

fn parse_fate(s: &str) -> Option<JobFate> {
    if s == "U" {
        return Some(JobFate::Unfinished);
    }
    let (tag, t) = s.split_at(1);
    let t = Cycle::from_cycles(t.parse().ok()?);
    match tag {
        "C" => Some(JobFate::Completed(t)),
        "R" => Some(JobFate::Rejected(t)),
        "A" => Some(JobFate::Aborted(t)),
        _ => None,
    }
}

fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scheduler: &str, jobs: usize) -> SimReport {
        let records = (0..jobs)
            .map(|i| JobRecord {
                id: JobId(i as u32),
                bench: Arc::from("IPV6 mixed"),
                arrival: Cycle::from_cycles(i as u64 * 1000),
                deadline_abs: Cycle::from_cycles(i as u64 * 1000 + 777),
                fate: match i % 4 {
                    0 => JobFate::Completed(Cycle::from_cycles(i as u64 * 1000 + 500)),
                    1 => JobFate::Rejected(Cycle::from_cycles(i as u64 * 1000)),
                    2 => JobFate::Aborted(Cycle::from_cycles(i as u64 * 1000 + 900)),
                    _ => JobFate::Unfinished,
                },
                // Deliberately awkward floats: non-terminating binary
                // fractions and a subnormal — decimal formatting would
                // corrupt them, to_bits must not.
                wgs_executed: 0.1 + 0.2 + i as f64 * 1e-17,
            })
            .collect();
        SimReport {
            scheduler: scheduler.to_string(),
            records,
            makespan: Duration::from_cycles(123_456_789),
            energy_mj: std::f64::consts::PI * 1e3,
            total_wgs: 42,
            l1_hit_rate: 2.0 / 3.0,
            l2_hit_rate: f64::MIN_POSITIVE / 2.0,
            events: 1_234_567,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lax-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn restores_reports_bit_exactly() {
        let path = tmp_path("roundtrip");
        let mut ck = Checkpoint::open(&path);
        let a = report("LAX", 7);
        let b = report("RR with spaces", 3);
        ck.record("LAX:IPV6:high:j128:s42", &a).unwrap();
        ck.record("RR:IPV6:high:j128:s42:f0.5", &b).unwrap();
        let reloaded = Checkpoint::open(&path);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get("LAX:IPV6:high:j128:s42"), Some(&a));
        assert_eq!(reloaded.get("RR:IPV6:high:j128:s42:f0.5"), Some(&b));
        ck.discard_file().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn recording_twice_overwrites_in_place() {
        let path = tmp_path("overwrite");
        let mut ck = Checkpoint::open(&path);
        ck.record("k", &report("A", 2)).unwrap();
        ck.record("k", &report("B", 1)).unwrap();
        let reloaded = Checkpoint::open(&path);
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.get("k").unwrap().scheduler, "B");
        ck.discard_file().unwrap();
    }

    #[test]
    fn missing_file_and_garbage_files_read_as_empty() {
        assert!(Checkpoint::open(tmp_path("nonexistent")).is_empty());
        let path = tmp_path("garbage");
        fs::write(&path, "this is not a checkpoint\ncell x\nend\n").unwrap();
        assert!(Checkpoint::open(&path).is_empty(), "bad header rejects the file");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_or_corrupt_cells_are_dropped_without_losing_good_ones() {
        let path = tmp_path("torn");
        let mut ck = Checkpoint::open(&path);
        ck.record("good", &report("LAX", 2)).unwrap();
        // Simulate a corrupted tail: a cell whose job count lies, then an
        // unterminated block (as if truncated mid-write).
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("cell bad\nscheduler X\nsummary 1 0 0 0 0 0 5\njob 0 0 0 U 0 b\nend\n");
        text.push_str("cell truncated\nscheduler Y\n");
        fs::write(&path, &text).unwrap();
        let reloaded = Checkpoint::open(&path);
        assert_eq!(reloaded.len(), 1, "only the intact cell survives");
        assert!(reloaded.contains("good"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn profiles_round_trip_and_are_optional() {
        let path = tmp_path("profiles");
        let mut ck = Checkpoint::open(&path);
        let r = report("LAX", 2);
        let p = CellProfile { wall: std::time::Duration::from_nanos(1_234_567_891), retries: 3 };
        ck.record_profiled("with", &r, p).unwrap();
        ck.record("without", &r).unwrap();
        let reloaded = Checkpoint::open(&path);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get("with"), Some(&r));
        assert_eq!(reloaded.profile("with"), Some(p));
        assert_eq!(reloaded.profile("without"), None);
        assert_eq!(reloaded.profiles().count(), 1);
        assert!(p.events_per_sec(&r) > 0.0);
        ck.discard_file().unwrap();
    }

    #[test]
    fn v1_files_are_rejected_wholesale() {
        let path = tmp_path("v1");
        fs::write(
            &path,
            "lax-bench-checkpoint v1\ncell k\nscheduler A\nsummary 1 0 0 0 0 0\nend\n",
        )
        .unwrap();
        assert!(Checkpoint::open(&path).is_empty(), "v1 header reads as absent");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let path = tmp_path("tmpclean");
        let mut ck = Checkpoint::open(&path);
        ck.record("k", &report("A", 1)).unwrap();
        assert!(!path.with_extension("tmp").exists());
        ck.discard_file().unwrap();
    }
}
