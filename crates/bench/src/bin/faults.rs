//! Fault-robustness study: deadline-miss degradation curves under
//! deterministic injected faults (LAX vs baselines), written to
//! `results/faults.txt`.
//!
//! ```text
//! cargo run --release -p lax-bench --bin faults \
//!     [--smoke] [--jobs N] [--resume] [--out PATH] [--ckpt PATH]
//! ```
//!
//! The grid is schedulers × benchmarks × fault intensities at the high
//! arrival rate; every cell's fault plan is seeded from the cell itself,
//! so output is bit-identical for any `--jobs N`. `--smoke` shrinks the
//! grid to a seconds-scale variant for CI.
//!
//! Finished cells stream into the checkpoint file (default
//! `results/faults.ckpt`). After a crash or SIGKILL, rerunning with
//! `--resume` keeps those cells and re-runs only the rest — the final
//! artifact is byte-identical to an uninterrupted run, which
//! `tools/tier1.sh` asserts. Without `--resume` a stale checkpoint is
//! discarded; on success the checkpoint is removed.

use std::error::Error;
use std::fs;
use std::path::PathBuf;

use lax_bench::figures::{faults, FaultSweep};
use lax_bench::{sweep, Checkpoint};

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("warning: {flag} is missing its value");
        args.remove(pos);
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn main() -> Result<(), Box<dyn Error>> {
    let (jobs, mut rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    let smoke = take_flag(&mut rest, "--smoke");
    let resume = take_flag(&mut rest, "--resume");
    let out = PathBuf::from(
        take_value(&mut rest, "--out").unwrap_or_else(|| "results/faults.txt".to_string()),
    );
    let ckpt = PathBuf::from(
        take_value(&mut rest, "--ckpt").unwrap_or_else(|| "results/faults.ckpt".to_string()),
    );
    if let Some(unknown) = rest.first() {
        return Err(format!("unknown argument `{unknown}`").into());
    }
    let grid = if smoke { FaultSweep::smoke() } else { FaultSweep::full() };

    if !resume && fs::remove_file(&ckpt).is_ok() {
        eprintln!(
            "[faults] discarded stale checkpoint {} (run with --resume to keep it)",
            ckpt.display()
        );
    }
    let mut checkpoint = Checkpoint::open(&ckpt);
    if !checkpoint.is_empty() {
        eprintln!(
            "[faults] resuming: {} cell(s) restored from {}",
            checkpoint.len(),
            ckpt.display()
        );
    }
    let total =
        grid.schedulers.len() * grid.benches.len() * grid.intensities.len();
    eprintln!(
        "[faults] {} grid: {total} cells on {jobs} worker thread(s)",
        if smoke { "smoke" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let text = faults(&grid, jobs, Some(&mut checkpoint))?;
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(&out, &text)?;
    checkpoint.discard_file()?;
    eprintln!("[faults] wrote {} in {:?}", out.display(), t0.elapsed());
    Ok(())
}
