//! Regenerates Figure 6 (CPU-side schedulers vs RR, three arrival rates).
fn main() {
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::fig6(&mut db));
}
