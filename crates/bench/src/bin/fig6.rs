//! Regenerates Figure 6 (CPU-side schedulers vs RR, three arrival rates).
//! `--jobs N` / `LAX_BENCH_JOBS` sets the sweep worker count.
fn main() -> Result<(), lax_bench::BenchError> {
    let (jobs, _) = lax_bench::sweep::jobs_from_cli(std::env::args().skip(1));
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::fig6(&mut db, jobs)?);
    Ok(())
}
