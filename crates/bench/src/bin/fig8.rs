//! Regenerates Figure 8 (LAX-SW / LAX-CPU / LAX). `--jobs N` /
//! `LAX_BENCH_JOBS` sets the sweep worker count.
fn main() -> Result<(), lax_bench::BenchError> {
    let (jobs, _) = lax_bench::sweep::jobs_from_cli(std::env::args().skip(1));
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::fig8(&mut db, jobs)?);
    Ok(())
}
