//! Regenerates Figure 8 (LAX-SW / LAX-CPU / LAX).
fn main() {
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::fig8(&mut db));
}
