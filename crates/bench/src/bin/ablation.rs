//! Ablation study of LAX's design choices (DESIGN.md Section 5):
//!
//! * admission control on/off (isolates Algorithm 1),
//! * laxity vs pure shortest-remaining-time priorities (Algorithm 2),
//! * event-driven priority updates on/off (CP integration's granularity),
//! * profiling-table update period sweep (the paper chose 100 us
//!   empirically),
//! * initial-priority policy (the paper's footnote 2).
//!
//! ```text
//! cargo run --release -p lax-bench --bin ablation [n_jobs]
//! ```

use gpu_sim::prelude::*;
use lax::ext::LaxDrop;
use lax::lax::{InitPriority, Lax, LaxConfig};
use sim_core::table::Table;
use workloads::spec::{ArrivalRate, Benchmark};
use workloads::suite::BenchmarkSuite;

const BENCHES: [Benchmark; 3] = [Benchmark::Lstm, Benchmark::Ipv6, Benchmark::Stem];

fn run_mode(mode: SchedulerMode, period: sim_core::time::Duration, bench: Benchmark, n: usize) -> usize {
    let suite = BenchmarkSuite::calibrated();
    let jobs = suite.generate_jobs(bench, ArrivalRate::High, n, lax_bench::runner::DEFAULT_SEED);
    let params = SimParams {
        offline_rates: suite.offline_rates(),
        profiling_period: period,
        ..SimParams::default()
    };
    let mut sim = Simulation::new(params, jobs, mode).expect("jobs run");
    sim.run().deadlines_met()
}

fn run_cfg(cfg: LaxConfig, bench: Benchmark, n: usize) -> usize {
    let period = cfg.update_period;
    run_mode(SchedulerMode::Cp(Box::new(Lax::with_config(cfg))), period, bench, n)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(128);
    let mut report = String::new();
    report.push_str(&format!(
        "LAX ablations, high arrival rate, {n} jobs per cell (deadline-met counts)\n\n"
    ));

    let variants: Vec<(&str, LaxConfig)> = vec![
        ("LAX (paper)", LaxConfig::default()),
        ("no admission", LaxConfig { admission: false, ..LaxConfig::default() }),
        ("no laxity (SRT prio)", LaxConfig { use_laxity: false, ..LaxConfig::default() }),
        ("no event updates", LaxConfig { event_driven_updates: false, ..LaxConfig::default() }),
        ("init lowest prio", LaxConfig { init_priority: InitPriority::Lowest, ..LaxConfig::default() }),
        ("init laxity estimate", LaxConfig { init_priority: InitPriority::InitialLaxity, ..LaxConfig::default() }),
    ];
    let mut header = vec!["variant".to_string()];
    header.extend(BENCHES.iter().map(|b| b.name().to_string()));
    let mut t = Table::new(header.clone());
    for (name, cfg) in variants {
        let mut row = vec![name.to_string()];
        for bench in BENCHES {
            row.push(run_cfg(cfg.clone(), bench, n).to_string());
        }
        t.row(row);
    }
    // Beyond the paper: LAX-DROP aborts deadline-blown jobs mid-flight.
    let mut row = vec!["LAX-DROP (extension)".to_string()];
    for bench in BENCHES {
        let mode = SchedulerMode::Cp(Box::new(LaxDrop::new()));
        row.push(run_mode(mode, sim_core::time::Duration::from_us(100), bench, n).to_string());
    }
    t.row(row);
    report.push_str(&t.render());
    report.push_str("\nProfiling-table update period sweep (paper: 100us):\n\n");
    let mut t = Table::new(header);
    for period_us in [25u64, 50, 100, 200, 400] {
        let cfg = LaxConfig {
            update_period: sim_core::time::Duration::from_us(period_us),
            ..LaxConfig::default()
        };
        let mut row = vec![format!("{period_us}us")];
        for bench in BENCHES {
            row.push(run_cfg(cfg.clone(), bench, n).to_string());
        }
        t.row(row);
    }
    report.push_str(&t.render());
    println!("{report}");
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/ablation.txt", &report);
    }
}
