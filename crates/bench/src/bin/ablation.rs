//! Ablation study of LAX's design choices (DESIGN.md Section 5):
//!
//! * admission control on/off (isolates Algorithm 1),
//! * laxity vs pure shortest-remaining-time priorities (Algorithm 2),
//! * event-driven priority updates on/off (CP integration's granularity),
//! * profiling-table update period sweep (the paper chose 100 us
//!   empirically),
//! * initial-priority policy (the paper's footnote 2).
//!
//! ```text
//! cargo run --release -p lax-bench --bin ablation [n_jobs] [--jobs N]
//! ```
//!
//! `LaxConfig` variants have no registry name, so the cells here run
//! through the generic [`sweep::par_map`] fan-out rather than
//! `Scenario`-keyed sweeps; `--jobs N` / `LAX_BENCH_JOBS` still picks the
//! worker count and output stays bit-identical for any choice.

use gpu_sim::prelude::*;
use lax::ext::LaxDrop;
use lax::lax::{InitPriority, Lax, LaxConfig};
use lax_bench::sweep;
use sim_core::table::Table;
use workloads::spec::{ArrivalRate, Benchmark};
use workloads::suite::BenchmarkSuite;

const BENCHES: [Benchmark; 3] = [Benchmark::Lstm, Benchmark::Ipv6, Benchmark::Stem];

/// One ablation cell: a row label plus how to build its scheduler.
#[derive(Clone)]
enum Variant {
    Lax(LaxConfig),
    Drop,
}

fn run_cell(variant: &Variant, bench: Benchmark, n: usize) -> usize {
    let (mode, period): (SchedulerMode, _) = match variant {
        Variant::Lax(cfg) => {
            let period = cfg.update_period;
            (SchedulerMode::Cp(Box::new(Lax::with_config(cfg.clone()))), period)
        }
        Variant::Drop => (
            SchedulerMode::Cp(Box::new(LaxDrop::new())),
            sim_core::time::Duration::from_us(100),
        ),
    };
    let suite = BenchmarkSuite::calibrated();
    let jobs = suite.generate_jobs(bench, ArrivalRate::High, n, lax_bench::runner::DEFAULT_SEED);
    let mut sim = Simulation::builder()
        .offline_rates(suite.offline_rates())
        .profiling_period(period)
        .jobs(jobs)
        .scheduler(mode)
        .build()
        .expect("jobs run");
    sim.run().deadlines_met()
}

/// Runs `variants` × [`BENCHES`] on `workers` threads and renders one row
/// per variant.
fn table_for(variants: &[(String, Variant)], n: usize, workers: usize) -> Table {
    let cells: Vec<(usize, Benchmark)> = (0..variants.len())
        .flat_map(|v| BENCHES.into_iter().map(move |b| (v, b)))
        .collect();
    let met = sweep::par_map(&cells, workers, |&(v, bench)| {
        run_cell(&variants[v].1, bench, n)
    });
    let mut header = vec!["variant".to_string()];
    header.extend(BENCHES.iter().map(|b| b.name().to_string()));
    let mut t = Table::new(header);
    for (v, (name, _)) in variants.iter().enumerate() {
        let mut row = vec![name.clone()];
        for (i, _) in BENCHES.iter().enumerate() {
            row.push(met[v * BENCHES.len() + i].to_string());
        }
        t.row(row);
    }
    t
}

fn main() {
    let (workers, rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    let n: usize = rest.first().and_then(|a| a.parse().ok()).unwrap_or(128);
    let mut report = String::new();
    report.push_str(&format!(
        "LAX ablations, high arrival rate, {n} jobs per cell (deadline-met counts)\n\n"
    ));

    let lax = |cfg: LaxConfig| Variant::Lax(cfg);
    let variants: Vec<(String, Variant)> = vec![
        ("LAX (paper)".into(), lax(LaxConfig::default())),
        ("no admission".into(), lax(LaxConfig { admission: false, ..LaxConfig::default() })),
        (
            "no laxity (SRT prio)".into(),
            lax(LaxConfig { use_laxity: false, ..LaxConfig::default() }),
        ),
        (
            "no event updates".into(),
            lax(LaxConfig { event_driven_updates: false, ..LaxConfig::default() }),
        ),
        (
            "init lowest prio".into(),
            lax(LaxConfig { init_priority: InitPriority::Lowest, ..LaxConfig::default() }),
        ),
        (
            "init laxity estimate".into(),
            lax(LaxConfig { init_priority: InitPriority::InitialLaxity, ..LaxConfig::default() }),
        ),
        // Beyond the paper: LAX-DROP aborts deadline-blown jobs mid-flight.
        ("LAX-DROP (extension)".into(), Variant::Drop),
    ];
    report.push_str(&table_for(&variants, n, workers).render());

    report.push_str("\nProfiling-table update period sweep (paper: 100us):\n\n");
    let periods: Vec<(String, Variant)> = [25u64, 50, 100, 200, 400]
        .into_iter()
        .map(|period_us| {
            let cfg = LaxConfig {
                update_period: sim_core::time::Duration::from_us(period_us),
                ..LaxConfig::default()
            };
            (format!("{period_us}us"), Variant::Lax(cfg))
        })
        .collect();
    report.push_str(&table_for(&periods, n, workers).render());
    println!("{report}");
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/ablation.txt", &report);
    }
}
