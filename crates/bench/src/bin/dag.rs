//! DAG-workload study: deadline attainment on graph-structured jobs
//! (fan-out/fan-in diamond, the Sirius-style IPA pipeline), written to
//! `results/dag.txt` — or any experiment described by a declarative
//! scenario file.
//!
//! ```text
//! cargo run --release -p lax-bench --bin dag -- \
//!     [--smoke] [--jobs N] [--resume] [--out PATH] [--ckpt PATH] \
//!     [--scenario-file PATH [--check]]
//! ```
//!
//! Without `--scenario-file` the grid is schedulers × DAG benchmarks ×
//! arrival rates; cell seeds exclude the scheduler, so output is
//! bit-identical for any `--jobs N`. `--smoke` shrinks the grid to a
//! seconds-scale variant for CI. Finished cells stream into the
//! checkpoint (default `results/dag.ckpt`); rerunning with `--resume`
//! after a crash keeps them and the artifact is byte-identical to an
//! uninterrupted run. Without `--resume` a stale checkpoint is discarded;
//! on success the checkpoint is removed.
//!
//! With `--scenario-file` the grid comes from the file instead (see
//! `workloads::scenario` for the schema and `examples/scenarios/` for
//! exemplars); malformed files exit with a typed diagnosis, and `--check`
//! parses + validates without running anything.

use std::error::Error;
use std::fs;
use std::path::PathBuf;

use lax_bench::figures::{dag, DagSweep};
use lax_bench::scenario_file::run_scenario_file;
use lax_bench::{sweep, Checkpoint};
use workloads::scenario::ScenarioFile;

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("warning: {flag} is missing its value");
        args.remove(pos);
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn main() -> Result<(), Box<dyn Error>> {
    let (jobs, mut rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    let smoke = take_flag(&mut rest, "--smoke");
    let resume = take_flag(&mut rest, "--resume");
    let check = take_flag(&mut rest, "--check");
    let scenario_file = take_value(&mut rest, "--scenario-file").map(PathBuf::from);
    let out = PathBuf::from(
        take_value(&mut rest, "--out").unwrap_or_else(|| "results/dag.txt".to_string()),
    );
    let ckpt = PathBuf::from(
        take_value(&mut rest, "--ckpt").unwrap_or_else(|| "results/dag.ckpt".to_string()),
    );
    if let Some(unknown) = rest.first() {
        return Err(format!("unknown argument `{unknown}`").into());
    }

    if let Some(path) = scenario_file {
        let source = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let file: ScenarioFile =
            source.parse().map_err(|e| format!("{}: {e}", path.display()))?;
        let cells = file.schedulers.len() * file.rates.len();
        if check {
            println!(
                "{}: ok ({} scheduler(s) x {} rate(s) = {cells} cell(s), {} job(s)/cell{})",
                path.display(),
                file.schedulers.len(),
                file.rates.len(),
                file.n_jobs,
                if file.fleet.is_some() { ", fleet" } else { "" }
            );
            return Ok(());
        }
        eprintln!(
            "[dag] scenario {}: {cells} cell(s) x {} job(s) on {jobs} worker thread(s)",
            file.name, file.n_jobs
        );
        let t0 = std::time::Instant::now();
        let text = run_scenario_file(&file, jobs)?;
        if let Some(dir) = out.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        fs::write(&out, &text)?;
        eprintln!("[dag] wrote {} in {:?}", out.display(), t0.elapsed());
        return Ok(());
    }

    let grid = if smoke { DagSweep::smoke() } else { DagSweep::full() };
    if !resume && fs::remove_file(&ckpt).is_ok() {
        eprintln!(
            "[dag] discarded stale checkpoint {} (run with --resume to keep it)",
            ckpt.display()
        );
    }
    let mut checkpoint = Checkpoint::open(&ckpt);
    if !checkpoint.is_empty() {
        eprintln!(
            "[dag] resuming: {} cell(s) restored from {}",
            checkpoint.len(),
            ckpt.display()
        );
    }
    let total = grid.schedulers.len() * grid.benches.len() * grid.rates.len();
    eprintln!(
        "[dag] {} grid: {total} cells on {jobs} worker thread(s)",
        if smoke { "smoke" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let text = dag(&grid, jobs, Some(&mut checkpoint))?;
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(&out, &text)?;
    checkpoint.discard_file()?;
    eprintln!("[dag] wrote {} in {:?}", out.display(), t0.elapsed());
    Ok(())
}
