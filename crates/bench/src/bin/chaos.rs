//! Fleet robustness study: SLO attainment under injected failure domains
//! (device crashes, correlated outages, drains, stragglers) swept over
//! failure intensity × routing policy × arrival rate, written to
//! `results/chaos.txt`.
//!
//! ```text
//! cargo run --release -p lax-bench --bin chaos -- \
//!     [SCENARIO ...] [--smoke] [--jobs N] [--resume] [--out PATH] \
//!     [--ckpt PATH] [--fidelity fast|detailed] [--scheduler NAME] \
//!     [--slots N] [--jitter F] [--devices N] [--njobs N] [--seed N] \
//!     [--bench NAME] [--rate NAME] [--policies CSV] \
//!     [--intensities CSV] [--retry-budget N] [--backoff-us N] [--shed]
//! ```
//!
//! Positional `SCENARIO`s are cluster-scenario strings with an optional
//! fault-intensity suffix (`POLICY:BENCH:RATE:dD:jN:sSEED[:fI]`). Without
//! positionals the grid is every routing policy × arrival rate × failure
//! intensity on one workload cell. Fault plans derive from the workload
//! cell and intensity — never the policy — so every policy faces the
//! identical fault schedule and the comparison is paired; arrival streams
//! are also paired *across* intensities, isolating the faults' effect.
//! Output is bit-identical for any `--jobs N`.
//!
//! Finished cells stream into the checkpoint when `--ckpt` is given;
//! rerunning with `--resume` keeps them and the final artifact is
//! byte-identical to an uninterrupted run. On success the checkpoint is
//! removed.
//!
//! Per-cell wall-clock profiles of executed (not restored) cells are
//! merged into `BENCH_cluster.json` next to `--out` (preserving the
//! `cluster` sweep's cells) and a slowest-cells table is upserted into
//! `SUMMARY.txt` there.

use std::error::Error;
use std::fs;
use std::path::PathBuf;

use lax_bench::cluster::{chaos_table, ClusterBuilder, ClusterCheckpoint, ClusterScenario};
use lax_bench::profile::FleetProfile;
use lax_bench::sweep;
use sim_core::time::Duration;
use workloads::spec::{ArrivalRate, Benchmark};

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("warning: {flag} is missing its value");
        args.remove(pos);
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Parses one `--intensities` entry into milli-units (`1.5` → 1500).
fn parse_milli(v: &str) -> Result<u32, Box<dyn Error>> {
    let f: f64 = v.parse()?;
    if !f.is_finite() || f < 0.0 || f * 1000.0 > f64::from(u32::MAX) {
        return Err(format!("bad fault intensity `{v}`").into());
    }
    Ok((f * 1000.0).round() as u32)
}

fn main() -> Result<(), Box<dyn Error>> {
    let (jobs, mut rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    let smoke = take_flag(&mut rest, "--smoke");
    let resume = take_flag(&mut rest, "--resume");
    let shed = take_flag(&mut rest, "--shed");
    let out = PathBuf::from(
        take_value(&mut rest, "--out").unwrap_or_else(|| "results/chaos.txt".to_string()),
    );
    let ckpt_path = take_value(&mut rest, "--ckpt").map(PathBuf::from);
    let fidelity = take_value(&mut rest, "--fidelity")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or_default();
    let scheduler = take_value(&mut rest, "--scheduler");
    let slots = take_value(&mut rest, "--slots").map(|v| v.parse::<usize>()).transpose()?;
    let jitter = take_value(&mut rest, "--jitter").map(|v| v.parse::<f64>()).transpose()?;
    let retry_budget =
        take_value(&mut rest, "--retry-budget").map(|v| v.parse::<u32>()).transpose()?;
    let backoff_us =
        take_value(&mut rest, "--backoff-us").map(|v| v.parse::<u64>()).transpose()?;
    let devices = take_value(&mut rest, "--devices")
        .map(|v| v.parse::<usize>())
        .transpose()?
        .unwrap_or(if smoke { 4 } else { 8 });
    let n_jobs = take_value(&mut rest, "--njobs")
        .map(|v| v.parse::<usize>())
        .transpose()?
        .unwrap_or(if smoke { 2000 } else { 200_000 });
    let seed = take_value(&mut rest, "--seed")
        .map(|v| v.parse::<u64>())
        .transpose()?
        .unwrap_or(20210301);
    let bench: Benchmark = take_value(&mut rest, "--bench")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(Benchmark::Hybrid);
    let rates: Vec<ArrivalRate> = match take_value(&mut rest, "--rate") {
        Some(v) => vec![v.parse()?],
        None if smoke => vec![ArrivalRate::High],
        None => vec![ArrivalRate::High, ArrivalRate::Medium, ArrivalRate::Low],
    };
    let policies: Vec<String> = take_value(&mut rest, "--policies")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            schedulers::routing::names().iter().map(|s| s.to_string()).collect()
        });
    let intensities: Vec<u32> = match take_value(&mut rest, "--intensities") {
        Some(v) => v.split(',').map(parse_milli).collect::<Result<_, _>>()?,
        None if smoke => vec![0, 1000],
        None => vec![0, 1000, 2000],
    };
    let mut scenarios = Vec::new();
    for arg in &rest {
        if arg.starts_with('-') {
            return Err(format!("unknown argument `{arg}`").into());
        }
        scenarios.push(arg.parse::<ClusterScenario>()?);
    }
    if scenarios.is_empty() {
        // Intensity outermost, then rate, then policy: rows group by fault
        // level so the attainment cliff reads top to bottom.
        for &milli in &intensities {
            for &rate in &rates {
                for policy in &policies {
                    scenarios.push(
                        ClusterScenario::new(policy, bench, rate, devices, n_jobs, seed)
                            .with_fault_milli(milli),
                    );
                }
            }
        }
    }

    let mut checkpoint = ckpt_path.as_ref().map(|p| {
        if !resume && fs::remove_file(p).is_ok() {
            eprintln!(
                "[chaos] discarded stale checkpoint {} (run with --resume to keep it)",
                p.display()
            );
        }
        ClusterCheckpoint::open(p)
    });
    if let Some(ckpt) = checkpoint.as_ref().filter(|c| !c.is_empty()) {
        eprintln!(
            "[chaos] resuming: {} cell(s) restored from {}",
            ckpt.len(),
            ckpt.path().display()
        );
    }
    eprintln!(
        "[chaos] {} fidelity, {} cell(s) x {n_jobs} job(s) on {jobs} worker thread(s)",
        fidelity,
        scenarios.len()
    );
    let t0 = std::time::Instant::now();
    let mut profile = FleetProfile::new("chaos");
    let mut reports = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let key = scenario.to_string();
        if let Some(report) = checkpoint.as_ref().and_then(|c| c.get(&key)) {
            eprintln!("[chaos] {key}: restored from checkpoint");
            reports.push(report.clone());
            continue;
        }
        let cell_t0 = std::time::Instant::now();
        let mut builder = ClusterBuilder::new(scenario.clone())
            .fidelity(fidelity)
            .workers(jobs)
            .shed_degraded(shed);
        if let Some(s) = &scheduler {
            builder = builder.device_scheduler(s);
        }
        if let Some(s) = slots {
            builder = builder.slots(s);
        }
        if let Some(j) = jitter {
            builder = builder.jitter(j);
        }
        if let Some(b) = retry_budget {
            builder = builder.retry_budget(b);
        }
        if let Some(us) = backoff_us {
            builder = builder.retry_backoff(Duration::from_us(us));
        }
        let report = builder.run()?;
        profile.record(&key, report.total, report.events, cell_t0.elapsed());
        eprintln!(
            "[chaos] {key}: attain {:.4}, lost {}, retried {} in {:?}",
            report.attainment(),
            report.lost,
            report.retried,
            cell_t0.elapsed()
        );
        if let Some(ckpt) = checkpoint.as_mut() {
            ckpt.record(&key, &report)?;
        }
        reports.push(report);
    }

    let mut text = String::new();
    text.push_str("# Fleet robustness: SLO attainment under injected failure domains\n");
    text.push_str("# (crashes, correlated outages, drains, stragglers at intensity f;\n");
    text.push_str("#  fault plans derive from the workload cell, never the policy, so\n");
    text.push_str("#  every policy faces the identical fault schedule; lost = crash-\n");
    text.push_str("#  lost past the retry budget, retried = recovered placements)\n");
    text.push_str(&format!("# fidelity: {fidelity}\n"));
    text.push_str(&chaos_table(&reports).render());
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(&out, &text)?;
    let results_dir = out.parent().filter(|d| !d.as_os_str().is_empty());
    profile.write_artifacts(results_dir.unwrap_or_else(|| std::path::Path::new(".")), 10)?;
    if let Some(ckpt) = checkpoint.as_ref() {
        ckpt.discard_file()?;
    }
    eprintln!("[chaos] wrote {} in {:?}", out.display(), t0.elapsed());
    Ok(())
}
