//! Regenerates the data behind Figure 1.
fn main() {
    println!("{}", lax_bench::figures::fig1());
}
