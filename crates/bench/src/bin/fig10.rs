//! Regenerates Figure 10 (prediction & priority traces for one RNN job).
fn main() {
    println!("{}", lax_bench::figures::fig10(64, 128, lax_bench::runner::DEFAULT_SEED));
}
