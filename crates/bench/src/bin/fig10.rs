//! Regenerates Figure 10 (prediction & priority traces for one RNN job).
//! `--jobs N` sets the worker-thread count for the per-benchmark runs.
fn main() {
    let (jobs, _) = lax_bench::sweep::jobs_from_cli(std::env::args().skip(1));
    println!(
        "{}",
        lax_bench::figures::fig10(64, 128, lax_bench::runner::DEFAULT_SEED, jobs)
    );
}
