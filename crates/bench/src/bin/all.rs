//! Regenerates the paper's complete evaluation and writes each artifact to
//! `results/<name>.txt`.
//!
//! ```text
//! cargo run --release -p lax-bench --bin all [max_batch] [--jobs N]
//! ```
//!
//! `max_batch` bounds Figure 4's batch sweep (default 128; 0 skips it).
//! `--jobs N` (or `LAX_BENCH_JOBS`) sets the sweep worker count; the
//! default is every available core. Output is bit-identical for any worker
//! count.
use std::error::Error;
use std::fs;
use std::io::Write;

use lax_bench::sweep;

fn save(dir: &str, name: &str, content: &str) -> Result<(), Box<dyn Error>> {
    let path = format!("{dir}/{name}.txt");
    fs::write(&path, content)?;
    eprintln!("[all] wrote {path}");
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let (jobs, rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    let max_batch: usize = rest.first().and_then(|a| a.parse().ok()).unwrap_or(128);
    let dir = "results";
    fs::create_dir_all(dir)?;
    eprintln!("[all] sweeping on {jobs} worker thread(s)");
    let t0 = std::time::Instant::now();

    save(dir, "table1", &lax_bench::figures::table1())?;
    save(dir, "fig1", &lax_bench::figures::fig1())?;

    let mut db = lax_bench::ResultsDb::new().verbose();
    save(dir, "fig7", &lax_bench::figures::fig7(&mut db, jobs)?)?;
    save(dir, "fig8", &lax_bench::figures::fig8(&mut db, jobs)?)?;
    save(dir, "fig9", &lax_bench::figures::fig9(&mut db, jobs)?)?;
    save(dir, "table5", &lax_bench::figures::table5(&mut db, jobs)?)?;
    save(dir, "fig6", &lax_bench::figures::fig6(&mut db, jobs)?)?;
    save(
        dir,
        "fig10",
        &lax_bench::figures::fig10(64, 128, lax_bench::runner::DEFAULT_SEED, jobs),
    )?;
    if max_batch > 0 {
        save(dir, "fig4", &lax_bench::figures::fig4(max_batch, jobs))?;
    }
    let wall = t0.elapsed();
    let mut f = fs::File::create(format!("{dir}/SUMMARY.txt"))?;
    writeln!(f, "full evaluation regenerated in {wall:?} on {jobs} worker thread(s)")?;
    eprintln!("[all] done in {wall:?} ({} cells cached)", db.len());
    Ok(())
}
