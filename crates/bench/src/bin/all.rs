//! Regenerates the paper's complete evaluation and writes each artifact to
//! `results/<name>.txt`. Pass a maximum batch size for Figure 4 as the
//! first argument (default 128; use 0 to skip Figure 4).
use std::fs;
use std::io::Write;

fn save(dir: &str, name: &str, content: &str) {
    let path = format!("{dir}/{name}.txt");
    fs::write(&path, content).expect("write artifact");
    eprintln!("[all] wrote {path}");
}

fn main() {
    let max_batch: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(128);
    let dir = "results";
    fs::create_dir_all(dir).expect("create results dir");
    let t0 = std::time::Instant::now();

    save(dir, "table1", &lax_bench::figures::table1());
    save(dir, "fig1", &lax_bench::figures::fig1());

    let mut db = lax_bench::ResultsDb::new().verbose();
    save(dir, "fig7", &lax_bench::figures::fig7(&mut db));
    save(dir, "fig8", &lax_bench::figures::fig8(&mut db));
    save(dir, "fig9", &lax_bench::figures::fig9(&mut db));
    save(dir, "table5", &lax_bench::figures::table5(&mut db));
    save(dir, "fig6", &lax_bench::figures::fig6(&mut db));
    save(dir, "fig10", &lax_bench::figures::fig10(64, 128, lax_bench::runner::DEFAULT_SEED));
    if max_batch > 0 {
        save(dir, "fig4", &lax_bench::figures::fig4(max_batch));
    }
    let mut f = fs::File::create(format!("{dir}/SUMMARY.txt")).unwrap();
    writeln!(f, "full evaluation regenerated in {:?}", t0.elapsed()).unwrap();
    eprintln!("[all] done in {:?}", t0.elapsed());
}
