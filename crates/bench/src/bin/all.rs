//! Regenerates the paper's complete evaluation and writes each artifact to
//! `results/<name>.txt`.
//!
//! ```text
//! cargo run --release -p lax-bench --bin all [max_batch] [--jobs N] [--resume]
//! ```
//!
//! `max_batch` bounds Figure 4's batch sweep (default 128; 0 skips it).
//! `--jobs N` (or `LAX_BENCH_JOBS`) sets the sweep worker count; the
//! default is every available core. Output is bit-identical for any worker
//! count.
//!
//! Finished grid cells stream into `results/all.ckpt` as they land. If a
//! run is interrupted (crash, SIGKILL, power loss), `--resume` reloads
//! that file and re-runs only the missing cells; the regenerated artifacts
//! are byte-identical to an uninterrupted run. Without `--resume` any
//! stale checkpoint is discarded and the evaluation starts from scratch.
//! The checkpoint is removed again once the run completes.
use std::error::Error;
use std::fs;
use std::io::Write;

use lax_bench::sweep;

/// Where interrupted runs park their finished cells.
const CHECKPOINT: &str = "results/all.ckpt";

fn save(dir: &str, name: &str, content: &str) -> Result<(), Box<dyn Error>> {
    let path = format!("{dir}/{name}.txt");
    fs::write(&path, content)?;
    eprintln!("[all] wrote {path}");
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let (jobs, rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    let resume = rest.iter().any(|a| a == "--resume");
    let max_batch: usize = rest
        .iter()
        .filter(|a| *a != "--resume")
        .find_map(|a| a.parse().ok())
        .unwrap_or(128);
    let dir = "results";
    fs::create_dir_all(dir)?;
    if !resume {
        // A fresh run must not silently adopt cells from an older one.
        if fs::remove_file(CHECKPOINT).is_ok() {
            eprintln!("[all] discarded stale checkpoint {CHECKPOINT} (run with --resume to keep it)");
        }
    }
    eprintln!("[all] sweeping on {jobs} worker thread(s)");
    let t0 = std::time::Instant::now();

    save(dir, "table1", &lax_bench::figures::table1())?;
    save(dir, "fig1", &lax_bench::figures::fig1())?;

    let mut db = lax_bench::ResultsDb::new().verbose().with_checkpoints(CHECKPOINT);
    save(dir, "fig7", &lax_bench::figures::fig7(&mut db, jobs)?)?;
    save(dir, "fig8", &lax_bench::figures::fig8(&mut db, jobs)?)?;
    save(dir, "fig9", &lax_bench::figures::fig9(&mut db, jobs)?)?;
    save(dir, "table5", &lax_bench::figures::table5(&mut db, jobs)?)?;
    save(dir, "fig6", &lax_bench::figures::fig6(&mut db, jobs)?)?;
    save(
        dir,
        "fig10",
        &lax_bench::figures::fig10(64, 128, lax_bench::runner::DEFAULT_SEED, jobs),
    )?;
    if max_batch > 0 {
        save(dir, "fig4", &lax_bench::figures::fig4(max_batch, jobs))?;
    }
    let wall = t0.elapsed();
    // Carry the previous profile's trajectory forward so the perf history
    // across regenerations stays in the document.
    let path = format!("{dir}/BENCH_throughput.json");
    let previous = fs::read_to_string(&path).ok();
    if let Some(json) = db.throughput_json(previous.as_deref()) {
        fs::write(&path, json)?;
        eprintln!("[all] wrote {path}");
    }
    let mut f = fs::File::create(format!("{dir}/SUMMARY.txt"))?;
    writeln!(f, "full evaluation regenerated in {wall:?} on {jobs} worker thread(s)")?;
    if let Some(profile) = db.profile_summary(10) {
        writeln!(f, "\n{profile}")?;
    }
    if let Some(ck) = db.checkpoint() {
        ck.discard_file()?;
    }
    eprintln!("[all] done in {wall:?} ({} cells cached)", db.len());
    Ok(())
}
