//! Diffs two `BENCH_throughput.json` profiles so a perf PR's claim is
//! mechanical instead of hand-waved.
//!
//! ```text
//! benchdiff OLD.json NEW.json [--threshold PCT] [--summary SUMMARY.txt]
//!           [--fail-on-regression] [--top N]
//! ```
//!
//! Prints per-cell and geomean events/sec deltas, flags cells slower by
//! more than the noise threshold (default 10%), and with `--summary`
//! upserts the delta table between marker lines in `SUMMARY.txt`
//! (idempotent; other sections untouched). `--fail-on-regression` exits
//! non-zero when any cell trips the threshold, for use as a CI gate.

use std::fs;
use std::process::ExitCode;

use lax_bench::benchdiff::diff;

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut threshold = 10.0f64;
    let mut summary: Option<String> = None;
    let mut fail_on_regression = false;
    let mut top = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold = t,
                None => return usage("--threshold needs a numeric percent"),
            },
            "--summary" => match args.next() {
                Some(p) => summary = Some(p),
                None => return usage("--summary needs a path"),
            },
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage("--top needs a count"),
            },
            "--fail-on-regression" => fail_on_regression = true,
            _ if a.starts_with("--") => return usage(&format!("unknown flag {a}")),
            _ => files.push(a),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return usage("expected exactly two BENCH_throughput.json paths");
    };
    let old_doc = match fs::read_to_string(old_path) {
        Ok(d) => d,
        Err(e) => return usage(&format!("cannot read {old_path}: {e}")),
    };
    let new_doc = match fs::read_to_string(new_path) {
        Ok(d) => d,
        Err(e) => return usage(&format!("cannot read {new_path}: {e}")),
    };
    let d = match diff(&old_doc, &new_doc, threshold / 100.0) {
        Ok(d) => d,
        Err(e) => return usage(&format!("parse error: {e}")),
    };
    print!("{}", d.render(top));
    if let Some(path) = summary {
        let existing = fs::read_to_string(&path).unwrap_or_default();
        if let Err(e) = fs::write(&path, d.upsert_summary(&existing, top)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[benchdiff] upserted delta table into {path}");
    }
    if fail_on_regression && !d.regressions().is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("benchdiff: {err}");
    eprintln!(
        "usage: benchdiff OLD.json NEW.json [--threshold PCT] [--summary SUMMARY.txt] \
         [--fail-on-regression] [--top N]"
    );
    ExitCode::FAILURE
}
