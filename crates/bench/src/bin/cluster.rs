//! Fleet-scale cluster study: per-policy deadline/SLO attainment with
//! streaming p99/p999 latency tails, written to `results/cluster.txt`.
//!
//! ```text
//! cargo run --release -p lax-bench --bin cluster -- \
//!     [SCENARIO ...] [--smoke] [--jobs N] [--resume] [--out PATH] \
//!     [--ckpt PATH] [--fidelity fast|detailed] [--scheduler NAME] \
//!     [--slots N] [--jitter F] [--devices N] [--njobs N] [--seed N] \
//!     [--bench NAME] [--rate NAME] [--policies CSV] \
//!     [--scenario-file PATH]
//! ```
//!
//! `--scenario-file` replaces the grid flags with a declarative scenario
//! file (see `workloads::scenario`); the file must carry a `fleet` key.
//!
//! Positional `SCENARIO`s are cluster-scenario strings
//! (`POLICY:BENCH:RATE:dD:jN:sSEED`). Without positionals the grid is the
//! four routing policies on one workload cell — by default the paper-scale
//! fleet run: 16 devices, one million HYBRID jobs at the high rate.
//! Per-device seeds hash from the workload cell, never the policy, so the
//! output is bit-identical for any `--jobs N`.
//!
//! Finished cells stream into the checkpoint when `--ckpt` is given;
//! rerunning with `--resume` keeps them and the final artifact is
//! byte-identical to an uninterrupted run. On success the checkpoint is
//! removed.
//!
//! Per-cell wall-clock profiles of executed (not restored) cells are
//! merged into `BENCH_cluster.json` next to `--out` and a slowest-cells
//! table is upserted into `SUMMARY.txt` there.

use std::error::Error;
use std::fs;
use std::path::PathBuf;

use lax_bench::cluster::{cluster_table, ClusterBuilder, ClusterCheckpoint, ClusterScenario};
use lax_bench::profile::FleetProfile;
use lax_bench::sweep;
use workloads::spec::{ArrivalRate, Benchmark};

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("warning: {flag} is missing its value");
        args.remove(pos);
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn main() -> Result<(), Box<dyn Error>> {
    let (jobs, mut rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    if let Some(path) = take_value(&mut rest, "--scenario-file").map(PathBuf::from) {
        let out = PathBuf::from(
            take_value(&mut rest, "--out").unwrap_or_else(|| "results/cluster.txt".to_string()),
        );
        if let Some(unknown) = rest.first() {
            return Err(format!("unknown argument `{unknown}` with --scenario-file").into());
        }
        let source = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let file: workloads::scenario::ScenarioFile =
            source.parse().map_err(|e| format!("{}: {e}", path.display()))?;
        if file.fleet.is_none() {
            return Err(format!(
                "{}: the cluster binary needs a `fleet` key (use bin/dag for single-device files)",
                path.display()
            )
            .into());
        }
        eprintln!(
            "[cluster] scenario {}: {} cell(s) x {} job(s) on {jobs} worker thread(s)",
            file.name,
            file.schedulers.len() * file.rates.len(),
            file.n_jobs
        );
        let t0 = std::time::Instant::now();
        let text = lax_bench::scenario_file::run_scenario_file(&file, jobs)?;
        if let Some(dir) = out.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        fs::write(&out, &text)?;
        eprintln!("[cluster] wrote {} in {:?}", out.display(), t0.elapsed());
        return Ok(());
    }
    let smoke = take_flag(&mut rest, "--smoke");
    let resume = take_flag(&mut rest, "--resume");
    let out = PathBuf::from(
        take_value(&mut rest, "--out").unwrap_or_else(|| "results/cluster.txt".to_string()),
    );
    let ckpt_path = take_value(&mut rest, "--ckpt").map(PathBuf::from);
    let fidelity = take_value(&mut rest, "--fidelity")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or_default();
    let scheduler = take_value(&mut rest, "--scheduler");
    let slots = take_value(&mut rest, "--slots").map(|v| v.parse::<usize>()).transpose()?;
    let jitter = take_value(&mut rest, "--jitter").map(|v| v.parse::<f64>()).transpose()?;
    let devices = take_value(&mut rest, "--devices")
        .map(|v| v.parse::<usize>())
        .transpose()?
        .unwrap_or(if smoke { 4 } else { 16 });
    let n_jobs = take_value(&mut rest, "--njobs")
        .map(|v| v.parse::<usize>())
        .transpose()?
        .unwrap_or(if smoke { 4000 } else { 1_000_000 });
    let seed = take_value(&mut rest, "--seed")
        .map(|v| v.parse::<u64>())
        .transpose()?
        .unwrap_or(20210301);
    let bench: Benchmark = take_value(&mut rest, "--bench")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(Benchmark::Hybrid);
    let rate: ArrivalRate = take_value(&mut rest, "--rate")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(ArrivalRate::High);
    let policies: Vec<String> = take_value(&mut rest, "--policies")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| {
            schedulers::routing::names().iter().map(|s| s.to_string()).collect()
        });
    let mut scenarios = Vec::new();
    for arg in &rest {
        if arg.starts_with('-') {
            return Err(format!("unknown argument `{arg}`").into());
        }
        scenarios.push(arg.parse::<ClusterScenario>()?);
    }
    if scenarios.is_empty() {
        for policy in &policies {
            scenarios.push(ClusterScenario::new(policy, bench, rate, devices, n_jobs, seed));
        }
    }

    let mut checkpoint = ckpt_path.as_ref().map(|p| {
        if !resume && fs::remove_file(p).is_ok() {
            eprintln!(
                "[cluster] discarded stale checkpoint {} (run with --resume to keep it)",
                p.display()
            );
        }
        ClusterCheckpoint::open(p)
    });
    if let Some(ckpt) = checkpoint.as_ref().filter(|c| !c.is_empty()) {
        eprintln!(
            "[cluster] resuming: {} cell(s) restored from {}",
            ckpt.len(),
            ckpt.path().display()
        );
    }
    eprintln!(
        "[cluster] {} fidelity, {} cell(s) x {n_jobs} job(s) on {jobs} worker thread(s)",
        fidelity,
        scenarios.len()
    );
    let t0 = std::time::Instant::now();
    let mut profile = FleetProfile::new("cluster");
    let mut reports = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let key = scenario.to_string();
        if let Some(report) = checkpoint.as_ref().and_then(|c| c.get(&key)) {
            eprintln!("[cluster] {key}: restored from checkpoint");
            reports.push(report.clone());
            continue;
        }
        let cell_t0 = std::time::Instant::now();
        let mut builder = ClusterBuilder::new(scenario.clone()).fidelity(fidelity).workers(jobs);
        if let Some(s) = &scheduler {
            builder = builder.device_scheduler(s);
        }
        if let Some(s) = slots {
            builder = builder.slots(s);
        }
        if let Some(j) = jitter {
            builder = builder.jitter(j);
        }
        let report = builder.run()?;
        profile.record(&key, report.total, report.events, cell_t0.elapsed());
        eprintln!(
            "[cluster] {key}: attain {:.4}, p999 {:.1}us in {:?}",
            report.attainment(),
            report.latency_us.p999(),
            cell_t0.elapsed()
        );
        if let Some(ckpt) = checkpoint.as_mut() {
            ckpt.record(&key, &report)?;
        }
        reports.push(report);
    }

    let mut text = String::new();
    text.push_str("# Cluster SLO attainment: routing/admission policies over a device fleet\n");
    text.push_str("# (deadline-aware least-laxity LL generalizes the paper's CP admission\n");
    text.push_str("#  test to the cluster front door; attain counts rejected jobs as misses)\n");
    text.push_str(&format!("# fidelity: {fidelity}\n"));
    text.push_str(&cluster_table(&reports).render());
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(&out, &text)?;
    let results_dir = out.parent().filter(|d| !d.as_os_str().is_empty());
    profile.write_artifacts(results_dir.unwrap_or_else(|| std::path::Path::new(".")), 10)?;
    if let Some(ckpt) = checkpoint.as_ref() {
        ckpt.discard_file()?;
    }
    eprintln!("[cluster] wrote {} in {:?}", out.display(), t0.elapsed());
    Ok(())
}
