//! Runs one experiment cell with the full observer stack attached and dumps
//! a Chrome trace-event file (Perfetto / `chrome://tracing` loadable) plus
//! the hardware metrics time series.
//!
//! ```text
//! cargo run --release -p lax-bench --bin trace -- SCENARIO \
//!     [--out trace.json] [--csv metrics.csv] [--series-json metrics.json] \
//!     [--fault INTENSITY] [--watch JOB]
//! ```
//!
//! `SCENARIO` is the usual cell string, e.g. `LAX:IPV6:high:j128:s20210301`.
//! The run is bit-identical to the same cell executed without observers (the
//! probe layer never schedules events), so traced reports match sweep
//! artifacts exactly.
//!
//! Outputs:
//!
//! * `--out` (default `trace.json`) — Chrome trace-event JSON: per-CU
//!   workgroup spans, per-queue kernel spans, counter tracks from the 100 us
//!   hardware snapshots. Validated before writing; an invalid document is a
//!   bug and aborts with a diagnostic.
//! * `--csv` (default `metrics.csv`) — wide-format time series (per-CU
//!   occupancy, queue depth, laxity min/median, DRAM bandwidth utilization,
//!   cache hit rates, cumulative energy).
//! * `--series-json` (optional) — the same series as JSON, including the
//!   watched job's prediction/priority trace when `--watch` is given.

use std::error::Error;
use std::fs;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use gpu_sim::prelude::*;
use lax_bench::sweep::{run_cell, RunOptions, Scenario};
use sim_core::json;

struct Args {
    scenario: Scenario,
    out: String,
    csv: String,
    series_json: Option<String>,
    fault: f64,
    watch: Option<u32>,
}

fn usage() -> String {
    "usage: trace SCENARIO [--out trace.json] [--csv metrics.csv] \
     [--series-json FILE] [--fault INTENSITY] [--watch JOB]\n\
     SCENARIO example: LAX:IPV6:high:j128:s20210301"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut scenario = None;
    let mut out = "trace.json".to_string();
    let mut csv = "metrics.csv".to_string();
    let mut series_json = None;
    let mut fault = 0.0;
    let mut watch = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} is missing its value"))
        };
        match arg.as_str() {
            "--out" => out = value_of("--out")?,
            "--csv" => csv = value_of("--csv")?,
            "--series-json" => series_json = Some(value_of("--series-json")?),
            "--fault" => {
                fault = value_of("--fault")?
                    .parse()
                    .map_err(|e| format!("bad --fault value: {e}"))?;
            }
            "--watch" => {
                watch = Some(
                    value_of("--watch")?
                        .parse()
                        .map_err(|e| format!("bad --watch job id: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(usage()),
            other if scenario.is_none() => {
                scenario = Some(other.parse::<Scenario>().map_err(|e| e.to_string())?);
            }
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let scenario = scenario.ok_or_else(usage)?;
    Ok(Args { scenario, out, csv, series_json, fault, watch })
}

fn run(args: &Args) -> Result<(), Box<dyn Error>> {
    let mut sampler = MetricsSampler::new();
    if let Some(job) = args.watch {
        sampler = sampler.watch_job(JobId(job));
    }
    let sampler = Arc::new(Mutex::new(sampler));
    let writer = Arc::new(Mutex::new(ChromeTraceWriter::new()));
    let opts = RunOptions::default()
        .fault_intensity(args.fault)
        .observe(sampler.clone())
        .observe(writer.clone());
    let report = run_cell(&args.scenario, &opts)?;

    let writer = writer.lock().expect("trace writer lock");
    let trace = writer.finish();
    json::validate(&trace)
        .map_err(|e| format!("internal error: emitted trace is not valid JSON: {e}"))?;
    fs::write(&args.out, &trace)?;
    eprintln!(
        "[trace] wrote {} ({} record(s){})",
        args.out,
        writer.len(),
        if writer.dropped() > 0 {
            format!(", {} dropped at capacity", writer.dropped())
        } else {
            String::new()
        }
    );

    let sampler = sampler.lock().expect("sampler lock");
    fs::write(&args.csv, sampler.to_csv())?;
    eprintln!(
        "[trace] wrote {} ({} snapshot(s), {} series)",
        args.csv,
        sampler.times().len(),
        sampler.series().len()
    );
    if let Some(path) = &args.series_json {
        let doc = sampler.to_json();
        json::validate(&doc)
            .map_err(|e| format!("internal error: emitted series JSON is invalid: {e}"))?;
        fs::write(path, doc)?;
        eprintln!("[trace] wrote {path}");
    }

    eprintln!(
        "[trace] {}: {} jobs, {} met deadline, {} rejected, makespan {:.0} us, {} events",
        args.scenario,
        report.records.len(),
        report.deadlines_met(),
        report.rejected(),
        report.makespan.as_us_f64(),
        report.events,
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
