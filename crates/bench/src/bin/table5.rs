//! Regenerates Table 5 (throughput, p99 latency, energy).
fn main() {
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::table5(&mut db));
}
