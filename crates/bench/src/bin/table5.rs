//! Regenerates Table 5 (throughput, p99 latency, energy). `--jobs N` /
//! `LAX_BENCH_JOBS` sets the sweep worker count.
fn main() -> Result<(), lax_bench::BenchError> {
    let (jobs, _) = lax_bench::sweep::jobs_from_cli(std::env::args().skip(1));
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::table5(&mut db, jobs)?);
    Ok(())
}
