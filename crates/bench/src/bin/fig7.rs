//! Regenerates Figure 7 (CP schedulers vs RR, high rate).
fn main() {
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::fig7(&mut db));
}
