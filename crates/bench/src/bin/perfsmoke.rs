//! Perf + equivalence smoke for one experiment cell.
//!
//! Runs the cell twice: once detached (the analytic `access_run` fast
//! path) and once with a null observer attached (the per-access reference
//! path), then
//!
//! 1. asserts the two full `SimReport`s are identical — the batching
//!    bit-identity contract, checked on the *whole* report Debug form so
//!    any new field is covered automatically, and
//! 2. reports the fast path's events/sec, optionally enforcing a floor.
//!
//! Digest strictly, time loosely: the digest comparison always gates, the
//! throughput floor only when `--floor N` is given (tier1 passes a
//! deliberately generous one so a noisy box never flakes the gate).
//!
//!   perfsmoke [CELL] [--floor EVENTS_PER_SEC]

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gpu_sim::probe::ProbeEvent;
use lax_bench::sweep::{run_cell, RunOptions, Scenario};
use sim_core::probe::Observer;
use sim_core::time::Cycle;

/// Discards every event; exists purely to force the probe bus (and with
/// it the per-access reference memory path) active.
struct NullObserver;

impl Observer<ProbeEvent> for NullObserver {
    fn on_event(&mut self, _at: Cycle, _event: &ProbeEvent) {}
}

fn main() -> ExitCode {
    let mut cell = "CP-ML:HYBRID:medium:j16:s20210301".to_string();
    let mut floor: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--floor" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) => floor = Some(f),
                None => {
                    eprintln!("--floor needs a numeric events/sec argument");
                    return ExitCode::FAILURE;
                }
            },
            _ => cell = a,
        }
    }
    let scenario: Scenario = match cell.parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad cell {cell:?}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let t0 = Instant::now();
    let fast = match run_cell(&scenario, &RunOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fast-path run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = t0.elapsed().as_secs_f64();

    let observer = Arc::new(Mutex::new(NullObserver));
    let reference = match run_cell(&scenario, &RunOptions::default().observe(observer)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reference-path run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let fast_s = format!("{fast:?}");
    let reference_s = format!("{reference:?}");
    if fast_s != reference_s {
        eprintln!("BIT-IDENTITY VIOLATION on {cell}: batched and reference reports differ");
        eprintln!("batched:   {fast_s}");
        eprintln!("reference: {reference_s}");
        return ExitCode::FAILURE;
    }

    let eps = fast.events as f64 / wall;
    println!(
        "cell {cell}: {} events in {wall:.2}s = {:.2}M events/sec; batched == reference",
        fast.events,
        eps / 1e6,
    );
    if let Some(f) = floor {
        if eps < f {
            eprintln!("throughput {eps:.0} events/sec below floor {f:.0}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
