//! Fleet observability export: run one cluster scenario with the fleet
//! observers attached and write a Perfetto/Chrome trace of the run, plus
//! optional windowed SLO telemetry as CSV and JSON time series.
//!
//! ```text
//! cargo run --release -p lax-bench --bin fleet-trace -- \
//!     [SCENARIO] [--out PATH] [--csv PATH] [--series-json PATH] \
//!     [--window-us N] [--fidelity fast|detailed] [--scheduler NAME] \
//!     [--slots N] [--jitter F] [--retry-budget N] [--backoff-us N] \
//!     [--shed] [--jobs N]
//! ```
//!
//! `SCENARIO` is a cluster-scenario string with an optional fault-intensity
//! suffix (`POLICY:BENCH:RATE:dD:jN:sSEED[:fI]`); the default is a small
//! faulty fleet (`LL:HYBRID:high:d4:j2000:s7:f1`) so the trace shows
//! crash/drain health spans out of the box. The trace (`--out`, default
//! `results/fleet_trace.json`) loads in `ui.perfetto.dev` or
//! `chrome://tracing`: one process lane for device health spans, one for
//! per-device job spans colored by outcome, one for routing/retry instants,
//! plus `in_flight` / `devices_down` counter tracks.
//!
//! Observers ride the probe bus and never perturb the simulation: the
//! report printed to stderr is byte-identical to an unobserved run for any
//! `--jobs N`. Both JSON artifacts are checked against
//! [`sim_core::json::validate`] before they are written.

use std::error::Error;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use gpu_sim::prelude::{FleetSampler, FleetTraceWriter};
use lax_bench::cluster::{ClusterBuilder, ClusterScenario};
use lax_bench::sweep;
use sim_core::json;
use sim_core::time::Duration;

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("warning: {flag} is missing its value");
        args.remove(pos);
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Validates a JSON artifact and writes it, creating parent directories.
fn write_json(path: &Path, doc: &str) -> Result<(), Box<dyn Error>> {
    json::validate(doc).map_err(|e| format!("{}: invalid JSON produced: {e}", path.display()))?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(path, doc)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let (jobs, mut rest) = sweep::jobs_from_cli(std::env::args().skip(1));
    let shed = take_flag(&mut rest, "--shed");
    let out = PathBuf::from(
        take_value(&mut rest, "--out").unwrap_or_else(|| "results/fleet_trace.json".to_string()),
    );
    let csv = take_value(&mut rest, "--csv").map(PathBuf::from);
    let series = take_value(&mut rest, "--series-json").map(PathBuf::from);
    let window_us =
        take_value(&mut rest, "--window-us").map(|v| v.parse::<u64>()).transpose()?;
    let fidelity = take_value(&mut rest, "--fidelity")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or_default();
    let scheduler = take_value(&mut rest, "--scheduler");
    let slots = take_value(&mut rest, "--slots").map(|v| v.parse::<usize>()).transpose()?;
    let jitter = take_value(&mut rest, "--jitter").map(|v| v.parse::<f64>()).transpose()?;
    let retry_budget =
        take_value(&mut rest, "--retry-budget").map(|v| v.parse::<u32>()).transpose()?;
    let backoff_us =
        take_value(&mut rest, "--backoff-us").map(|v| v.parse::<u64>()).transpose()?;
    let mut scenario: Option<ClusterScenario> = None;
    for arg in &rest {
        if arg.starts_with('-') {
            return Err(format!("unknown argument `{arg}`").into());
        }
        if scenario.is_some() {
            return Err("fleet-trace takes at most one scenario".into());
        }
        scenario = Some(arg.parse()?);
    }
    let scenario =
        scenario.unwrap_or_else(|| "LL:HYBRID:high:d4:j2000:s7:f1".parse().expect("default"));

    let mut sampler = FleetSampler::new().with_devices(scenario.devices as u16);
    if let Some(us) = window_us {
        sampler = sampler.with_window(Duration::from_us(us));
    }
    let sampler = Arc::new(Mutex::new(sampler));
    let tracer = Arc::new(Mutex::new(FleetTraceWriter::new()));

    let key = scenario.to_string();
    eprintln!("[fleet-trace] {key}: {fidelity} fidelity on {jobs} worker thread(s)");
    let t0 = std::time::Instant::now();
    let mut builder = ClusterBuilder::new(scenario)
        .fidelity(fidelity)
        .workers(jobs)
        .shed_degraded(shed)
        .observe(sampler.clone())
        .observe(tracer.clone());
    if let Some(s) = &scheduler {
        builder = builder.device_scheduler(s);
    }
    if let Some(s) = slots {
        builder = builder.slots(s);
    }
    if let Some(j) = jitter {
        builder = builder.jitter(j);
    }
    if let Some(b) = retry_budget {
        builder = builder.retry_budget(b);
    }
    if let Some(us) = backoff_us {
        builder = builder.retry_backoff(Duration::from_us(us));
    }
    let report = builder.run()?;
    eprintln!(
        "[fleet-trace] {key}: attain {:.4}, p999 {:.1}us, misses [{}] in {:?}",
        report.attainment(),
        report.latency_us.p999(),
        report.misses,
        t0.elapsed()
    );

    write_json(&out, &tracer.lock().unwrap().finish())?;
    eprintln!("[fleet-trace] wrote trace {}", out.display());
    let sampler = sampler.lock().unwrap();
    if sampler.dropped() > 0 {
        eprintln!(
            "[fleet-trace] warning: {} window(s) beyond capacity were dropped",
            sampler.dropped()
        );
    }
    if let Some(path) = csv {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        fs::write(&path, sampler.to_csv())?;
        eprintln!("[fleet-trace] wrote {} window(s) to {}", sampler.len(), path.display());
    }
    if let Some(path) = series {
        write_json(&path, &sampler.to_json())?;
        eprintln!("[fleet-trace] wrote series {}", path.display());
    }
    Ok(())
}
