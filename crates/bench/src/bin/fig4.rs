//! Regenerates Figure 4 (response time vs batch size). Pass a maximum batch
//! size as the first argument (default 128) to bound runtime; `--jobs N`
//! sets the worker-thread count.
fn main() {
    let (jobs, rest) = lax_bench::sweep::jobs_from_cli(std::env::args().skip(1));
    let max: usize = rest.first().and_then(|a| a.parse().ok()).unwrap_or(128);
    println!("{}", lax_bench::figures::fig4(max, jobs));
}
