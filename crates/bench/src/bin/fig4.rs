//! Regenerates Figure 4 (response time vs batch size). Pass a maximum batch
//! size as the first argument (default 128) to bound runtime.
fn main() {
    let max: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(128);
    println!("{}", lax_bench::figures::fig4(max));
}
