//! Regenerates Figure 9 (useful-work fraction).
fn main() {
    let mut db = lax_bench::ResultsDb::new().verbose();
    println!("{}", lax_bench::figures::fig9(&mut db));
}
