//! Regenerates the paper's Table 1.
fn main() {
    println!("{}", lax_bench::figures::table1());
}
