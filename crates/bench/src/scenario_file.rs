//! Execute declarative scenario files ([`workloads::scenario`]).
//!
//! A scenario file describes an experiment grid as data — workload (named
//! benchmark or inline DAG), schedulers, arrival rates, fault intensity,
//! and optionally a fleet topology. This module turns one parsed
//! [`ScenarioFile`] into the corresponding cells and renders the results
//! as the house-style ASCII table the other binaries emit:
//!
//! * No `fleet` key → one single-device cell per scheduler × rate, run
//!   through the same machinery as [`crate::sweep::run_cell`] (fault plans
//!   seeded from the cell seed, arrival bursts applied to the job stream).
//! * With `fleet` → one cluster cell per scheduler × rate: the file's
//!   routing policy and device count in front of per-device simulations,
//!   with each scheduler name taking the device-scheduler slot.
//!
//! # Determinism
//!
//! Cells are seeded from [`ScenarioFile::cell_seed`] (workload fields
//! only, never scheduler/policy/worker count) and fanned with
//! [`crate::sweep::par_map`], which returns results in input order — so
//! the rendered report is byte-identical for any `--jobs N`, the same
//! contract the sweep binaries honor.

use std::sync::Arc;

use gpu_sim::prelude::*;
use schedulers::registry;
use workloads::burst::apply_bursts;
use workloads::scenario::{ScenarioFile, ScenarioFileError, WorkloadSpec};
use workloads::spec::ArrivalRate;
use workloads::suite::BenchmarkSuite;

use sim_core::table::{fmt_f, Table};

use crate::cluster::{cluster_table, ClusterBuilder, ClusterScenario};
use crate::sweep::{par_map, BenchError, SharedObserver};

/// One cell of a scenario file's grid: a scheduler at a rate level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCell {
    /// Device-scheduler name.
    pub scheduler: String,
    /// Arrival-rate level.
    pub rate: ArrivalRate,
}

/// The scheduler × rate grid a scenario file spans, in file order
/// (schedulers outer, rates inner — the row order of the rendered table).
pub fn file_cells(file: &ScenarioFile) -> Vec<FileCell> {
    let mut cells = Vec::with_capacity(file.schedulers.len() * file.rates.len());
    for scheduler in &file.schedulers {
        for &rate in &file.rates {
            cells.push(FileCell { scheduler: scheduler.clone(), rate });
        }
    }
    cells
}

/// Runs one single-device cell of a scenario file: generate the cell's
/// jobs (named workloads byte-identical to the sweep engine's cells,
/// inline DAGs from the file's own rate table), seed the fault plan from
/// the cell seed at the file's intensity, attach `observers`, run.
///
/// # Errors
///
/// [`BenchError::Scenario`] when the inline workload cannot materialize,
/// [`BenchError::UnknownScheduler`] / [`BenchError::Sim`] as for
/// [`crate::sweep::run_cell`].
pub fn run_file_cell(
    file: &ScenarioFile,
    scheduler: &str,
    rate: ArrivalRate,
    observers: &[SharedObserver],
) -> Result<SimReport, BenchError> {
    let suite = BenchmarkSuite::calibrated();
    let mut jobs = file.generate_jobs(suite, rate)?;
    let mode = registry::try_build(scheduler)?;
    let cfg = GpuConfig::default();
    // Same fault-span contract as the sweep engine: storms are drawn over
    // the window jobs can occupy.
    let span = jobs
        .iter()
        .map(|j| j.arrival.saturating_since(Cycle::ZERO) + j.deadline)
        .max()
        .unwrap_or(Duration::ZERO);
    let plan = FaultPlan::seeded(file.cell_seed(rate), file.fault_intensity, span, cfg.num_cus);
    apply_bursts(&mut jobs, &plan.bursts);
    let mut builder = Simulation::builder()
        .offline_rates(suite.offline_rates())
        .jobs(jobs)
        .scheduler(mode)
        .faults(plan);
    for obs in observers {
        builder = builder.observe(Box::new(Arc::clone(obs)));
    }
    let mut sim = builder.build()?;
    sim.try_run().map_err(BenchError::Sim)
}

/// The cluster scenario one fleet-mode cell maps to.
///
/// # Errors
///
/// [`BenchError::Scenario`] when the file has no `fleet` key or its
/// workload is an inline DAG (the cluster's symbolic fast tier needs a
/// named benchmark).
pub fn fleet_scenario(file: &ScenarioFile, rate: ArrivalRate) -> Result<ClusterScenario, BenchError> {
    let fleet = file.fleet.as_ref().ok_or(ScenarioFileError::Missing { key: "fleet" })?;
    let WorkloadSpec::Named(bench) = &file.workload else {
        return Err(ScenarioFileError::Value {
            key: "fleet".into(),
            why: "fleet topology requires a named benchmark workload, not an inline DAG".into(),
        }
        .into());
    };
    Ok(ClusterScenario::new(&fleet.policy, *bench, rate, fleet.devices, file.n_jobs, file.seed)
        .with_fault_milli((file.fault_intensity * 1000.0).round() as u32))
}

/// Runs a scenario file's whole grid on `workers` threads and renders the
/// report text the `--scenario-file` binaries write.
///
/// # Errors
///
/// The first cell failure aborts the run — a scenario file is one
/// experiment, not a sweep where partial grids are useful.
pub fn run_scenario_file(file: &ScenarioFile, workers: usize) -> Result<String, BenchError> {
    let mut text = String::new();
    text.push_str(&format!("# scenario: {}\n", file.name));
    text.push_str(&format!(
        "# seed {}, {} job(s)/cell, fault intensity {}\n",
        file.seed, file.n_jobs, file.fault_intensity
    ));
    if file.fleet.is_some() {
        let mut reports = Vec::new();
        for cell in file_cells(file) {
            let scenario = fleet_scenario(file, cell.rate)?;
            let report = ClusterBuilder::new(scenario)
                .device_scheduler(&cell.scheduler)
                .workers(workers)
                .run()?;
            reports.push(report);
        }
        text.push_str(&cluster_table(&reports).render());
        return Ok(text);
    }
    let cells = file_cells(file);
    let results = par_map(&cells, workers, |c| run_file_cell(file, &c.scheduler, c.rate, &[]));
    let mut table = Table::with_columns(&[
        "scheduler", "rate", "jobs", "met", "rejected", "attain", "p99_ms", "thpt/s",
    ]);
    for (cell, result) in cells.iter().zip(results) {
        let r = result?;
        let n = r.records.len();
        table.row(vec![
            cell.scheduler.clone(),
            cell.rate.to_string(),
            n.to_string(),
            r.deadlines_met().to_string(),
            r.rejected().to_string(),
            fmt_f(r.deadlines_met() as f64 / n.max(1) as f64, 4),
            fmt_f(r.p99_latency_ms(), 3),
            fmt_f(r.throughput_per_sec(), 1),
        ]);
    }
    text.push_str(&table.render());
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec::Benchmark;

    fn small_named() -> ScenarioFile {
        ScenarioFile::parse(
            r#"{
                "name": "smoke",
                "seed": 3,
                "jobs": 8,
                "schedulers": ["RR", "LAX"],
                "rates": ["low"],
                "workload": "IPV6"
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn named_file_cell_matches_the_sweep_cell() {
        // The central promise: a file naming a benchmark reproduces the
        // sweep engine's cell bit-for-bit.
        let file = small_named();
        let sweep_cell = crate::sweep::Scenario::new(
            "RR",
            Benchmark::Ipv6,
            ArrivalRate::Low,
            8,
            3,
        );
        assert_eq!(file.cell_seed(ArrivalRate::Low), sweep_cell.cell_seed());
        let via_file = run_file_cell(&file, "RR", ArrivalRate::Low, &[]).unwrap();
        let via_sweep =
            crate::sweep::run_cell(&sweep_cell, &crate::sweep::RunOptions::default()).unwrap();
        assert_eq!(via_file, via_sweep);
    }

    #[test]
    fn inline_dag_file_runs_end_to_end() {
        let file = ScenarioFile::parse(
            r#"{
                "name": "diamond",
                "seed": 5,
                "jobs": 6,
                "schedulers": ["RR"],
                "rates": ["low"],
                "workload": {
                    "deadline_us": 5000,
                    "rate_jobs_per_sec": { "high": 4000, "medium": 2000, "low": 1000 },
                    "stages": [
                        { "kernel": "stem" },
                        { "kernel": "cuckoo" },
                        { "kernel": "cuckoo" },
                        { "kernel": "stem" }
                    ],
                    "edges": [[0, 1], [0, 2], [1, 3], [2, 3]]
                }
            }"#,
        )
        .unwrap();
        let report = run_file_cell(&file, "RR", ArrivalRate::Low, &[]).unwrap();
        assert_eq!(report.records.len(), 6);
        assert!(report.completed() > 0);
    }

    #[test]
    fn report_text_is_worker_count_invariant() {
        let file = small_named();
        let serial = run_scenario_file(&file, 1).unwrap();
        let parallel = run_scenario_file(&file, 8).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.contains("scheduler"));
        assert!(serial.contains("LAX"));
    }

    #[test]
    fn fleet_with_inline_workload_is_a_typed_error() {
        let mut file = small_named();
        file.fleet = Some(workloads::scenario::FleetSpec { devices: 2, policy: "LL".into() });
        file.workload = WorkloadSpec::Inline(workloads::scenario::DagSpec {
            deadline_us: 100.0,
            rate_jobs_per_sec: [1000.0, 500.0, 100.0],
            stages: vec![workloads::scenario::StageSpec { kernel: "stem".into(), deadline_us: None }],
            edges: vec![],
        });
        match fleet_scenario(&file, ArrivalRate::Low).unwrap_err() {
            BenchError::Scenario(ScenarioFileError::Value { key, .. }) => assert_eq!(key, "fleet"),
            other => panic!("expected a typed scenario error, got {other:?}"),
        }
    }

    #[test]
    fn fleet_file_runs_through_the_cluster() {
        let file = ScenarioFile::parse(
            r#"{
                "name": "mini-fleet",
                "seed": 2,
                "jobs": 200,
                "schedulers": ["LAX"],
                "rates": ["high"],
                "workload": "GMM",
                "fault_intensity": 1.0,
                "fleet": { "devices": 2, "policy": "LL" }
            }"#,
        )
        .unwrap();
        let text = run_scenario_file(&file, 2).unwrap();
        assert!(text.contains("mini-fleet"));
        assert!(text.contains("LL"), "cluster table names the policy: {text}");
    }
}
