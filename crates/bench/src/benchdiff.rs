//! Mechanical comparison of two `BENCH_throughput.json` profiles.
//!
//! Every perf PR claims a speedup; this module makes the claim checkable
//! by diffing the committed profile against a freshly regenerated one:
//! per-cell events/sec deltas, the geomean delta, and flagged regressions
//! (cells slower by more than a noise threshold). The rendered delta
//! table is upserted between marker lines in `results/SUMMARY.txt` by
//! `bin/benchdiff` so the perf trajectory lives next to the numbers it
//! summarizes.

use sim_core::json::{self, JsonError};
use sim_core::stats::geomean;
use sim_core::table::{fmt_f, Table};

use crate::profile::upsert_section;

/// One cell present in both profiles.
#[derive(Debug, Clone)]
pub struct CellDelta {
    /// Scenario string, e.g. `BAT:HYBRID:low:j128:s20210301`.
    pub scenario: String,
    /// events/sec in the old profile.
    pub old_rate: f64,
    /// events/sec in the new profile.
    pub new_rate: f64,
}

impl CellDelta {
    /// Speedup ratio (`> 1.0` means the new profile is faster).
    pub fn ratio(&self) -> f64 {
        if self.old_rate > 0.0 {
            self.new_rate / self.old_rate
        } else {
            f64::INFINITY
        }
    }
}

/// The full diff between two throughput profiles.
#[derive(Debug)]
pub struct BenchDiff {
    /// Cells present in both files, in scenario order.
    pub cells: Vec<CellDelta>,
    /// Scenarios only in the old file.
    pub removed: Vec<String>,
    /// Scenarios only in the new file.
    pub added: Vec<String>,
    /// Geomean events/sec of the old profile's matched cells.
    pub old_geomean: f64,
    /// Geomean events/sec of the new profile's matched cells.
    pub new_geomean: f64,
    /// Regression threshold as a fraction (0.10 = flag cells ≥10% slower).
    pub threshold: f64,
}

impl BenchDiff {
    /// Matched cells slower in the new profile by more than the threshold.
    pub fn regressions(&self) -> Vec<&CellDelta> {
        self.cells.iter().filter(|c| c.ratio() < 1.0 - self.threshold).collect()
    }

    /// Geomean speedup ratio over matched cells.
    pub fn geomean_ratio(&self) -> f64 {
        if self.old_geomean > 0.0 {
            self.new_geomean / self.old_geomean
        } else {
            f64::INFINITY
        }
    }

    /// Renders the human-readable report: geomean line, per-cell extremes
    /// (`n` best and worst), and every flagged regression.
    pub fn render(&self, n: usize) -> String {
        let mut out = format!(
            "benchdiff: {} matched cell(s), geomean {} -> {} events/sec ({:+.1}%)\n",
            self.cells.len(),
            fmt_f(self.old_geomean, 0),
            fmt_f(self.new_geomean, 0),
            (self.geomean_ratio() - 1.0) * 100.0,
        );
        if !self.added.is_empty() || !self.removed.is_empty() {
            out.push_str(&format!(
                "cells only in new: {}; only in old: {}\n",
                self.added.len(),
                self.removed.len()
            ));
        }
        let mut sorted: Vec<&CellDelta> = self.cells.iter().collect();
        sorted.sort_by(|a, b| {
            b.ratio().partial_cmp(&a.ratio()).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut t = Table::with_columns(&["scenario", "old ev/s", "new ev/s", "delta"]);
        let shown: Vec<&CellDelta> = if sorted.len() <= 2 * n {
            sorted
        } else {
            // Largest speedups, then an ellipsis row, then the tail end
            // (smallest speedups / regressions).
            let tail = sorted.split_off(sorted.len() - n);
            sorted.truncate(n);
            sorted.extend(tail);
            sorted
        };
        let half = shown.len() / 2;
        let elided = self.cells.len() > shown.len();
        for (i, c) in shown.iter().enumerate() {
            if elided && i == half {
                t.row(vec!["...".into(), "...".into(), "...".into(), "...".into()]);
            }
            let flag = if c.ratio() < 1.0 - self.threshold { "  REGRESSED" } else { "" };
            t.row(vec![
                c.scenario.clone(),
                fmt_f(c.old_rate, 0),
                fmt_f(c.new_rate, 0),
                format!("{:+.1}%{}", (c.ratio() - 1.0) * 100.0, flag),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());
        let regs = self.regressions();
        out.push_str(&format!(
            "\n{} regression(s) beyond the {:.0}% noise threshold\n",
            regs.len(),
            self.threshold * 100.0
        ));
        out
    }

    /// Begin marker for the SUMMARY.txt delta section.
    pub fn begin_marker() -> &'static str {
        "== benchdiff: throughput delta =="
    }

    /// End marker for the SUMMARY.txt delta section.
    pub fn end_marker() -> &'static str {
        "== end benchdiff: throughput delta =="
    }

    /// Upserts the rendered delta table (bracketed by the markers) into an
    /// existing SUMMARY.txt document, leaving everything else untouched.
    pub fn upsert_summary(&self, existing: &str, n: usize) -> String {
        let section =
            format!("{}\n{}{}\n", Self::begin_marker(), self.render(n), Self::end_marker());
        upsert_section(existing, Self::begin_marker(), Self::end_marker(), &section)
    }
}

/// Parses one `BENCH_throughput.json` document into `(scenario, rate)`
/// pairs in scenario order.
fn parse_profile(doc: &str) -> Result<Vec<(String, f64)>, JsonError> {
    let v = json::parse(doc)?;
    let mut out = Vec::new();
    for cell in v.get("cells").and_then(|c| c.as_array()).unwrap_or(&[]) {
        let scenario = cell.get("scenario").and_then(|s| s.as_str()).unwrap_or("").to_string();
        let rate = cell.get("events_per_sec").and_then(|r| r.as_f64()).unwrap_or(0.0);
        if !scenario.is_empty() {
            out.push((scenario, rate));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Diffs two `BENCH_throughput.json` documents (old, new).
///
/// # Errors
///
/// Returns the underlying [`JsonError`] when either document fails to
/// parse.
pub fn diff(old_doc: &str, new_doc: &str, threshold: f64) -> Result<BenchDiff, JsonError> {
    let old = parse_profile(old_doc)?;
    let new = parse_profile(new_doc)?;
    let mut cells = Vec::new();
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(o), Some(n)) if o.0 == n.0 => {
                cells.push(CellDelta { scenario: o.0.clone(), old_rate: o.1, new_rate: n.1 });
                i += 1;
                j += 1;
            }
            (Some(o), Some(n)) if o.0 < n.0 => {
                removed.push(o.0.clone());
                i += 1;
            }
            (Some(_), Some(n)) => {
                added.push(n.0.clone());
                j += 1;
            }
            (Some(o), None) => {
                removed.push(o.0.clone());
                i += 1;
            }
            (None, Some(n)) => {
                added.push(n.0.clone());
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    let old_rates: Vec<f64> = cells.iter().map(|c| c.old_rate).filter(|&r| r > 0.0).collect();
    let new_rates: Vec<f64> = cells.iter().map(|c| c.new_rate).filter(|&r| r > 0.0).collect();
    Ok(BenchDiff {
        cells,
        removed,
        added,
        old_geomean: geomean(&old_rates),
        new_geomean: geomean(&new_rates),
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(cells: &[(&str, f64)]) -> String {
        let mut out = String::from("{\"cells\": [");
        for (i, (s, r)) in cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"scenario\": \"{s}\", \"events\": 100, \"wall_ns\": 10, \"events_per_sec\": {r}}}"
            ));
        }
        out.push_str("], \"geomean_events_per_sec\": 1.0}");
        out
    }

    #[test]
    fn matched_cells_and_geomean() {
        let old = profile(&[("A:1", 100.0), ("B:2", 400.0)]);
        let new = profile(&[("A:1", 200.0), ("B:2", 400.0)]);
        let d = diff(&old, &new, 0.1).unwrap();
        assert_eq!(d.cells.len(), 2);
        assert!(d.regressions().is_empty());
        // geomean(100,400)=200, geomean(200,400)=~282.8 → ratio sqrt(2)
        assert!((d.geomean_ratio() - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn regressions_flagged_beyond_threshold() {
        let old = profile(&[("A:1", 100.0), ("B:2", 100.0), ("C:3", 100.0)]);
        let new = profile(&[("A:1", 80.0), ("B:2", 95.0), ("C:3", 120.0)]);
        let d = diff(&old, &new, 0.1).unwrap();
        let regs = d.regressions();
        assert_eq!(regs.len(), 1, "only the 20% slowdown trips the 10% threshold");
        assert_eq!(regs[0].scenario, "A:1");
        assert!(d.render(5).contains("REGRESSED"));
    }

    #[test]
    fn added_and_removed_cells_are_reported() {
        let old = profile(&[("A:1", 100.0), ("B:2", 100.0)]);
        let new = profile(&[("B:2", 100.0), ("C:3", 100.0)]);
        let d = diff(&old, &new, 0.1).unwrap();
        assert_eq!(d.cells.len(), 1);
        assert_eq!(d.removed, vec!["A:1"]);
        assert_eq!(d.added, vec!["C:3"]);
    }

    #[test]
    fn summary_upsert_is_idempotent() {
        let old = profile(&[("A:1", 100.0)]);
        let new = profile(&[("A:1", 150.0)]);
        let d = diff(&old, &new, 0.1).unwrap();
        let base = "header line\n\n== fleet profile: cluster ==\nstuff\n== end fleet profile: cluster ==\n";
        let once = d.upsert_summary(base, 10);
        assert!(once.contains("== benchdiff: throughput delta =="));
        assert!(once.contains("== fleet profile: cluster =="), "other sections preserved");
        let twice = d.upsert_summary(&once, 10);
        assert_eq!(once, twice);
    }

    #[test]
    fn bad_json_is_a_typed_error() {
        assert!(diff("not json", "{}", 0.1).is_err());
    }
}
