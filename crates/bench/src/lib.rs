//! # lax-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md's experiment index). The binaries in
//! `src/bin/` are thin wrappers over [`runner`] and [`figures`]; `bin/all`
//! reproduces the whole evaluation and emits EXPERIMENTS.md-ready text.
//!
//! Grids execute through the parallel [`sweep`] engine: every cell is an
//! independent deterministic simulation, fanned across
//! `--jobs N` / `LAX_BENCH_JOBS` worker threads (default: all cores) with
//! bit-identical results regardless of thread count.

#![warn(missing_docs)]

pub mod figures;
pub mod runner;
pub mod sweep;

pub use runner::ResultsDb;
pub use sweep::{run_scenario, BenchError, Scenario};
