//! # lax-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md's experiment index). The binaries in
//! `src/bin/` are thin wrappers over [`runner`] and [`figures`]; `bin/all`
//! reproduces the whole evaluation and emits EXPERIMENTS.md-ready text.

#![warn(missing_docs)]

pub mod figures;
pub mod runner;

pub use runner::{run_once, Key, ResultsDb};
