//! # lax-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md's experiment index). The binaries in
//! `src/bin/` are thin wrappers over [`runner`] and [`figures`]; `bin/all`
//! reproduces the whole evaluation and emits EXPERIMENTS.md-ready text.
//!
//! Grids execute through the parallel [`sweep`] engine: every cell is an
//! independent deterministic simulation, fanned across
//! `--jobs N` / `LAX_BENCH_JOBS` worker threads (default: all cores) with
//! bit-identical results regardless of thread count. The engine is
//! self-healing — a panicking or runaway cell degrades to a typed
//! [`BenchError`] after bounded retries instead of killing the grid — and
//! long runs stream finished cells into a crash-safe [`checkpoint`] file
//! so an interrupted `bin/all` or `bin/faults` restarted with `--resume`
//! only re-runs what is missing, byte-identically.

#![warn(missing_docs)]

pub mod benchdiff;
pub mod checkpoint;
pub mod cluster;
pub mod figures;
pub mod profile;
pub mod runner;
pub mod scenario_file;
pub mod sweep;

pub use checkpoint::Checkpoint;
pub use cluster::{ClusterBuilder, ClusterReport, ClusterScenario};
pub use runner::ResultsDb;
pub use sweep::{run_cell, BenchError, RunOptions, Scenario, SweepOptions};
