//! Parallel sweep execution engine.
//!
//! The paper's evaluation is a large grid — 11+ schedulers × 8 benchmarks ×
//! three arrival rates (× seeds for confidence runs) — and every cell is a
//! fully independent deterministic simulation. This module fans those cells
//! across worker threads with nothing beyond `std`:
//!
//! * [`Scenario`] — a self-describing, `Send`-able experiment cell with a
//!   lossless string round-trip (`Display`/`FromStr`) for CLI use.
//! * [`run_cell`] — run one cell under [`RunOptions`] (fault intensity,
//!   probe observers, wall-clock deadline), returning typed [`BenchError`]s
//!   instead of panics. One entrypoint; faults and observers are options,
//!   not separate functions.
//! * [`run_sweep`] / [`run_sweep_opts`] — a work queue over
//!   `std::thread::scope`: `N` workers pull cells from an atomic cursor,
//!   results flow back over a channel, and a progress callback fires on
//!   the caller's thread per finished cell. [`SweepOptions`] adds per-cell
//!   panic isolation with bounded retry and an optional wall-clock
//!   deadline, so one broken cell degrades to a typed error instead of
//!   killing a multi-hour grid.
//! * [`par_map`] — the same fan-out for arbitrary cell types (the ablation
//!   binary sweeps `LaxConfig` variants that have no registry name).
//!
//! # Determinism
//!
//! Each cell's RNG seed is derived as a hash of the base seed and the
//! workload-identifying fields ([`Scenario::cell_seed`]), never from worker
//! identity or completion order, so per-scenario reports are
//! **bit-identical** whether the sweep runs on 1 thread or 64 (covered by
//! `sweeps_are_deterministic_across_thread_counts`). Results are returned
//! in submission order. The scheduler name is excluded from the hash so
//! every scheduler in the same workload column runs the identical job
//! trace — cross-scheduler comparisons stay paired.
//!
//! # Worker count
//!
//! Binaries take `--jobs N`, falling back to the `LAX_BENCH_JOBS`
//! environment variable, falling back to
//! [`std::thread::available_parallelism`] (see [`default_jobs`]).

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration as WallDuration, Instant};

use gpu_sim::prelude::*;
use schedulers::registry::{self, UnknownScheduler};
use schedulers::routing::UnknownRoutePolicy;
use workloads::burst::apply_bursts;
use workloads::spec::{ArrivalRate, Benchmark, ParseSpecError};
use workloads::suite::BenchmarkSuite;

/// One experiment cell: a scheduler on a benchmark at an arrival rate, with
/// a job count and a base RNG seed. Self-describing and totally ordered so
/// it can key result caches; stringifiable for CLIs (`Display`/`FromStr`).
///
/// # Examples
///
/// ```
/// use lax_bench::sweep::Scenario;
/// use workloads::spec::{ArrivalRate, Benchmark};
///
/// let s = Scenario::new("LAX", Benchmark::Ipv6, ArrivalRate::High, 128, 42);
/// assert_eq!(s.to_string(), "LAX:IPV6:high:j128:s42");
/// assert_eq!("LAX:IPV6:high:j128:s42".parse::<Scenario>().unwrap(), s);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Scenario {
    /// Scheduler name (see [`schedulers::registry`]). Must not contain
    /// `':'` (the string-form field separator); registry names never do,
    /// and [`Scenario::new`]/[`FromStr`] enforce it so the `Display` round
    /// trip stays lossless.
    pub scheduler: String,
    /// Benchmark.
    pub bench: Benchmark,
    /// Arrival rate level.
    pub rate: ArrivalRate,
    /// Number of jobs to generate.
    pub n_jobs: usize,
    /// Base RNG seed; the per-cell stream is [`Scenario::cell_seed`].
    pub seed: u64,
}

impl Scenario {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `scheduler` contains `':'`, which would make the
    /// [`Display`](fmt::Display) form unparseable (no registry name does;
    /// see [`schedulers::registry`]).
    pub fn new(scheduler: &str, bench: Benchmark, rate: ArrivalRate, n_jobs: usize, seed: u64) -> Self {
        assert!(
            !scheduler.contains(':'),
            "scheduler name {scheduler:?} contains ':', the Scenario string-form separator"
        );
        Scenario { scheduler: scheduler.to_string(), bench, rate, n_jobs, seed }
    }

    /// The seed actually fed to the workload generator: an FNV-1a hash of
    /// the base seed and the workload-identifying fields (benchmark, rate,
    /// job count), so each workload column gets an independent stream and
    /// the value never depends on which worker runs the cell or in what
    /// order.
    ///
    /// The scheduler name is deliberately **not** mixed in: every scheduler
    /// compared at the same `(bench, rate, n_jobs, seed)` must see the
    /// identical job trace, or cross-scheduler metrics (met ratios, the
    /// figure 6–10 grids) would pick up workload sampling noise instead of
    /// scheduler differences.
    pub fn cell_seed(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&self.seed.to_le_bytes());
        eat(self.bench.name().as_bytes());
        eat(b":");
        eat(self.rate.name().as_bytes());
        eat(&(self.n_jobs as u64).to_le_bytes());
        h
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}:j{}:s{}",
            self.scheduler, self.bench, self.rate, self.n_jobs, self.seed
        )
    }
}

/// Error parsing a [`Scenario`] from its string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    input: String,
    reason: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid scenario `{}`: {} (expected SCHED:BENCH:RATE:jN:sSEED, e.g. LAX:IPV6:high:j128:s42)",
            self.input, self.reason
        )
    }
}

impl std::error::Error for ParseScenarioError {}

impl FromStr for Scenario {
    type Err = ParseScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |reason: String| ParseScenarioError { input: s.to_string(), reason };
        let parts: Vec<&str> = s.split(':').collect();
        let [scheduler, bench, rate, jobs, seed] = parts.as_slice() else {
            return Err(bad(format!("{} fields, expected 5", parts.len())));
        };
        let bench: Benchmark = bench.parse().map_err(|e: ParseSpecError| bad(e.to_string()))?;
        let rate: ArrivalRate = rate.parse().map_err(|e: ParseSpecError| bad(e.to_string()))?;
        let n_jobs = jobs
            .strip_prefix('j')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad(format!("bad job count `{jobs}`")))?;
        let seed = seed
            .strip_prefix('s')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad(format!("bad seed `{seed}`")))?;
        if scheduler.is_empty() {
            return Err(bad("empty scheduler name".to_string()));
        }
        Ok(Scenario::new(scheduler, bench, rate, n_jobs, seed))
    }
}

/// Typed failure of one experiment cell. Carries enough context to report
/// the cell without aborting the rest of the grid.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// The scenario names a scheduler outside the registry.
    UnknownScheduler(UnknownScheduler),
    /// The cluster scenario names a routing policy outside the registry.
    UnknownPolicy(UnknownRoutePolicy),
    /// The simulation rejected the configuration or generated jobs, or hit
    /// a runtime fault (stall watchdog, event budget, queue overflow).
    Sim(SimError),
    /// The cell's worker panicked on every attempt; the sweep isolated the
    /// panic instead of unwinding through the pool.
    Panicked {
        /// How many times the cell was attempted before giving up.
        attempts: u32,
        /// The final panic payload, stringified.
        message: String,
    },
    /// The cell exceeded its per-cell wall-clock deadline
    /// ([`SweepOptions::cell_deadline`]).
    DeadlineExceeded {
        /// The configured limit.
        limit: WallDuration,
    },
    /// The caller's progress callback panicked mid-sweep; the workers were
    /// drained cleanly and the payload is reported here instead of
    /// poisoning the result channel.
    Callback(String),
    /// A filesystem operation (checkpoint write, results file) failed.
    Io(String),
    /// The cluster scenario's fleet fault plan is ill-formed for the fleet.
    FleetFault(FleetFaultError),
    /// A declarative scenario file failed to parse or validate
    /// ([`workloads::scenario`]).
    Scenario(workloads::scenario::ScenarioFileError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownScheduler(e) => write!(f, "{e}"),
            BenchError::UnknownPolicy(e) => write!(f, "{e}"),
            BenchError::Sim(e) => write!(f, "{e}"),
            BenchError::Panicked { attempts, message } => {
                write!(f, "cell panicked on all {attempts} attempt(s): {message}")
            }
            BenchError::DeadlineExceeded { limit } => {
                write!(f, "cell exceeded its {limit:?} wall-clock deadline")
            }
            BenchError::Callback(msg) => write!(f, "progress callback panicked: {msg}"),
            BenchError::Io(msg) => write!(f, "I/O error: {msg}"),
            BenchError::FleetFault(e) => write!(f, "invalid fleet fault plan: {e}"),
            BenchError::Scenario(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::UnknownScheduler(e) => Some(e),
            BenchError::UnknownPolicy(e) => Some(e),
            BenchError::Sim(e) => Some(e),
            BenchError::FleetFault(e) => Some(e),
            BenchError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnknownScheduler> for BenchError {
    fn from(e: UnknownScheduler) -> Self {
        BenchError::UnknownScheduler(e)
    }
}

impl From<UnknownRoutePolicy> for BenchError {
    fn from(e: UnknownRoutePolicy) -> Self {
        BenchError::UnknownPolicy(e)
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<FleetFaultError> for BenchError {
    fn from(e: FleetFaultError) -> Self {
        BenchError::FleetFault(e)
    }
}

impl From<workloads::scenario::ScenarioFileError> for BenchError {
    fn from(e: workloads::scenario::ScenarioFileError) -> Self {
        BenchError::Scenario(e)
    }
}

/// A shareable handle to a probe-bus observer, as accepted by
/// [`RunOptions::observe`].
///
/// The `Arc<Mutex<..>>` shape is what lets [`RunOptions`] be `Clone` (a
/// deadline-bounded cell re-runs on a helper thread with the same options)
/// while the caller keeps its own handle to read the observer back after the
/// run. Any concrete `Arc<Mutex<MetricsSampler>>`-style handle coerces to
/// this type at the call site.
pub type SharedObserver = Arc<Mutex<dyn Observer<ProbeEvent> + Send>>;

/// Everything that can vary about *how* one cell is executed, as opposed to
/// *what* it simulates (the [`Scenario`]): fault intensity, attached
/// observers, and an optional wall-clock deadline.
///
/// This is the single knob struct behind [`run_cell`], replacing the old
/// `run_scenario` / `run_faulty_scenario` / `run_faulty_scenario_observed`
/// trio. The default value runs the cell fault-free, unobserved and
/// unbounded — byte-identical to what plain `run_scenario` produced.
///
/// # Examples
///
/// ```
/// use lax_bench::sweep::{run_cell, RunOptions, Scenario};
/// use workloads::spec::{ArrivalRate, Benchmark};
///
/// let s = Scenario::new("LAX", Benchmark::Ipv6, ArrivalRate::Low, 4, 1);
/// let clean = run_cell(&s, &RunOptions::default()).unwrap();
/// let faulty = run_cell(&s, &RunOptions::default().fault_intensity(1.0)).unwrap();
/// assert_ne!(clean, faulty);
/// ```
#[derive(Clone, Default)]
pub struct RunOptions {
    /// Fault-plan intensity ([`FaultPlan::seeded`] over the cell's seed and
    /// workload span); `0.0` (default) installs the empty plan, which is
    /// bit-identical to a build that never touches the faults API.
    pub fault_intensity: f64,
    /// Observers attached to the simulation's probe bus. Attaching
    /// observers never perturbs the report (the probe layer schedules no
    /// events), so observed and unobserved runs of the same cell are
    /// bit-identical; `observers_do_not_perturb_cell_reports` locks this in.
    pub observers: Vec<SharedObserver>,
    /// Per-cell wall-clock limit; `None` (default) runs the cell inline on
    /// the calling thread with no watcher overhead. When set, the cell runs
    /// on a helper thread so the caller can give up at the limit with
    /// [`BenchError::DeadlineExceeded`]; the abandoned helper finishes (or
    /// panics) detached and its result is discarded.
    pub deadline: Option<WallDuration>,
}

impl fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunOptions")
            .field("fault_intensity", &self.fault_intensity)
            .field("observers", &self.observers.len())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl RunOptions {
    /// Sets the fault-plan intensity.
    pub fn fault_intensity(mut self, intensity: f64) -> Self {
        self.fault_intensity = intensity;
        self
    }

    /// Attaches one observer to the cell's probe bus. Concrete
    /// `Arc<Mutex<T>>` handles coerce to [`SharedObserver`] here, so callers
    /// pass `sampler.clone()` and keep their handle for reading results.
    pub fn observe(mut self, observer: SharedObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Sets the per-cell wall-clock deadline.
    pub fn deadline(mut self, limit: WallDuration) -> Self {
        self.deadline = Some(limit);
        self
    }
}

/// Runs one experiment cell under the given [`RunOptions`] — the sole cell
/// entrypoint (faults, observers and deadlines are all options, not
/// separate functions).
///
/// The fault plan is derived from [`Scenario::cell_seed`] — which excludes
/// the scheduler name — so every scheduler compared at one `(bench, rate,
/// n_jobs, seed, intensity)` cell faces the *identical* storm: the same
/// slowdown windows, CU outages, DRAM throttles and arrival bursts.
///
/// # Errors
///
/// Returns [`BenchError::UnknownScheduler`] for scheduler names outside the
/// registry, [`BenchError::Sim`] if the generated jobs cannot run or the
/// run hits a runtime fault (stall watchdog, event budget), and
/// [`BenchError::DeadlineExceeded`] past `opts.deadline` — no panics on
/// user input.
pub fn run_cell(scenario: &Scenario, opts: &RunOptions) -> Result<SimReport, BenchError> {
    match opts.deadline {
        None => run_cell_inline(scenario, opts),
        Some(limit) => {
            // Run on a helper thread so this thread can enforce the
            // deadline. On timeout the helper is abandoned (it keeps running
            // detached until its cell finishes; the send to the dropped
            // channel then fails silently). A panicking cell is re-raised
            // here so the caller sees the same unwind as the inline path.
            let (tx, rx) = mpsc::channel();
            let cell = scenario.clone();
            let inner = opts.clone();
            std::thread::spawn(move || {
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    run_cell_inline(&cell, &inner)
                }));
                let _ = tx.send(outcome);
            });
            match rx.recv_timeout(limit) {
                Ok(Ok(result)) => result,
                Ok(Err(payload)) => panic::resume_unwind(payload),
                Err(_) => Err(BenchError::DeadlineExceeded { limit }),
            }
        }
    }
}

/// The deadline-free cell body: generate jobs, seed the fault plan, attach
/// observers, run.
fn run_cell_inline(scenario: &Scenario, opts: &RunOptions) -> Result<SimReport, BenchError> {
    let suite = BenchmarkSuite::calibrated();
    let mut jobs =
        suite.generate_jobs(scenario.bench, scenario.rate, scenario.n_jobs, scenario.cell_seed());
    let mode = registry::try_build(&scenario.scheduler)?;
    let cfg = GpuConfig::default();
    // Faults are drawn over the span jobs can occupy: last arrival plus the
    // latest relative deadline, so late windows still overlap live work.
    let span = jobs
        .iter()
        .map(|j| j.arrival.saturating_since(Cycle::ZERO) + j.deadline)
        .max()
        .unwrap_or(Duration::ZERO);
    let plan = FaultPlan::seeded(scenario.cell_seed(), opts.fault_intensity, span, cfg.num_cus);
    apply_bursts(&mut jobs, &plan.bursts);
    let mut builder = Simulation::builder()
        .offline_rates(suite.offline_rates())
        .jobs(jobs)
        .scheduler(mode)
        .faults(plan);
    for obs in &opts.observers {
        builder = builder.observe(Box::new(Arc::clone(obs)));
    }
    let mut sim = builder.build()?;
    sim.try_run().map_err(BenchError::Sim)
}

/// Worker-thread count used when a binary gets no `--jobs` flag: the
/// `LAX_BENCH_JOBS` environment variable if set and positive, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_jobs() -> usize {
    std::env::var("LAX_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Splits a `--jobs N` (or `--jobs=N`) flag out of CLI arguments, returning
/// the worker count and the remaining positional arguments in order. With
/// no flag the count falls back to [`default_jobs`]; a malformed or
/// non-positive count is reported on stderr and also falls back.
///
/// # Examples
///
/// ```
/// let (jobs, rest) = lax_bench::sweep::jobs_from_cli(
///     ["64", "--jobs", "4"].iter().map(|s| s.to_string()),
/// );
/// assert_eq!(jobs, 4);
/// assert_eq!(rest, vec!["64".to_string()]);
/// ```
pub fn jobs_from_cli(args: impl Iterator<Item = String>) -> (usize, Vec<String>) {
    let mut jobs = None;
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" || arg == "-j" {
            // Only consume the next token as the value when it looks like
            // one; `--jobs --verbose` must not eat `--verbose`.
            match args.peek() {
                Some(next) if !next.starts_with('-') => args.next(),
                _ => {
                    eprintln!("warning: {arg} is missing its value (want a positive integer)");
                    continue;
                }
            }
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else {
            rest.push(arg);
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n > 0 => jobs = Some(n),
            _ => eprintln!(
                "warning: ignoring bad --jobs value {:?} (want a positive integer)",
                value.unwrap_or_default()
            ),
        }
    }
    (jobs.unwrap_or_else(default_jobs), rest)
}

/// Progress of a sweep, reported once per finished cell (on the calling
/// thread, in completion order).
#[derive(Debug, Clone, Copy)]
pub struct Progress<'a> {
    /// Cells finished so far (including this one).
    pub done: usize,
    /// Total cells in the sweep.
    pub total: usize,
    /// The cell that just finished.
    pub scenario: &'a Scenario,
    /// Wall time this cell took on its worker.
    pub cell_wall: WallDuration,
    /// Whether the cell produced a report (vs a [`BenchError`]).
    pub ok: bool,
}

/// Renders a caught panic payload for error reports: the `&str`/`String`
/// message when there is one, a placeholder otherwise.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The fan-out engine underneath [`par_map_with`] and [`run_sweep_opts`]:
/// returns the per-item results **in input order** plus the first panic the
/// `on_done` callback raised, if any.
///
/// A panicking callback must not poison the sweep: workers block on an
/// unbounded channel send only when the receiver has hung up, so if the
/// drain loop unwound mid-sweep the scope join would deadlock-free but the
/// results would be lost and the panic would tear through caller frames
/// that hold checkpoints half-written. Instead the callback runs under
/// `catch_unwind`; on a panic the drain keeps consuming (workers finish
/// their cells and exit cleanly) but stops invoking the callback, and the
/// payload is handed back for the caller to surface as a typed error.
fn par_map_catching<T, R, F>(
    items: &[T],
    jobs: usize,
    f: F,
    mut on_done: impl FnMut(usize, &R, WallDuration),
) -> (Vec<R>, Option<String>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R, WallDuration)>();
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut callback_panic: Option<String> = None;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let t0 = Instant::now();
                let r = f(&items[i]);
                if tx.send((i, r, t0.elapsed())).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        while let Ok((i, r, wall)) = rx.recv() {
            if callback_panic.is_none() {
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| on_done(i, &r, wall)))
                {
                    callback_panic = Some(panic_message(&*payload));
                }
            }
            results[i] = Some(r);
        }
    });
    let results = results
        .into_iter()
        .map(|r| r.expect("every index was sent exactly once"))
        .collect();
    (results, callback_panic)
}

/// Fans `items` across `jobs` scoped worker threads and returns `f(item)`
/// for each, **in input order**. `on_done(index, wall)` fires on the
/// calling thread as each item finishes (completion order).
///
/// The engine underneath [`run_sweep`], exposed for sweeps whose cells are
/// not [`Scenario`]s (e.g. the ablation binary's `LaxConfig` variants).
///
/// # Panics
///
/// If `on_done` panics, every in-flight cell still completes and the
/// workers exit cleanly before the panic resumes on the calling thread
/// ([`run_sweep`] converts the same situation into
/// [`BenchError::Callback`] instead).
pub fn par_map_with<T, R, F>(
    items: &[T],
    jobs: usize,
    f: F,
    on_done: impl FnMut(usize, &R, WallDuration),
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (results, callback_panic) = par_map_catching(items, jobs, f, on_done);
    if let Some(msg) = callback_panic {
        panic!("par_map_with progress callback panicked: {msg}");
    }
    results
}

/// [`par_map_with`] without the completion callback.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, jobs, f, |_, _, _| {})
}

/// Robustness knobs for a sweep: worker count, per-cell panic isolation
/// with bounded retry, and an optional per-cell wall-clock deadline.
///
/// The defaults reproduce the plain [`run_sweep`] behaviour (isolate
/// panics, one retry, default [`RunOptions`]), so figure binaries opt in
/// only to what they need.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker-thread count (see [`default_jobs`]).
    pub jobs: usize,
    /// Extra attempts after a cell panics. The simulator is deterministic,
    /// so a panic usually recurs — the retry guards against environmental
    /// failures (allocation pressure on a loaded machine) and bounds how
    /// long a genuinely broken cell is hammered.
    pub retries: u32,
    /// Per-cell execution options, passed through to [`run_cell`].
    pub run: RunOptions,
}

impl SweepOptions {
    /// Options for a plain sweep on `jobs` workers.
    pub fn new(jobs: usize) -> Self {
        SweepOptions { jobs, retries: 1, run: RunOptions::default() }
    }

    /// Sets the number of extra attempts after a panic.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the per-cell wall-clock deadline ([`RunOptions::deadline`]).
    pub fn cell_deadline(mut self, limit: WallDuration) -> Self {
        self.run.deadline = Some(limit);
        self
    }

    /// Sets the fault-plan intensity for every cell
    /// ([`RunOptions::fault_intensity`]).
    pub fn fault_intensity(mut self, intensity: f64) -> Self {
        self.run.fault_intensity = intensity;
        self
    }
}

/// Runs one cell under [`SweepOptions`]: catch panics, retry a bounded
/// number of times, and (when configured) give up at the wall-clock
/// deadline. The per-cell building block of [`run_sweep_opts`], public so
/// binaries with non-`Scenario` grids (the fault sweep varies intensity
/// per cell) get the same isolation.
///
/// # Errors
///
/// Everything [`run_cell`] reports, plus [`BenchError::Panicked`].
pub fn run_cell_opts(scenario: &Scenario, opts: &SweepOptions) -> Result<SimReport, BenchError> {
    run_cell_profiled(scenario, opts).0
}

/// [`run_cell_opts`], additionally reporting how many attempts the cell
/// consumed (1 for a clean first run; retries = attempts − 1). The sweep
/// profiler records this into the checkpoint so resumed runs still know
/// which cells were flaky.
pub fn run_cell_profiled(
    scenario: &Scenario,
    opts: &SweepOptions,
) -> (Result<SimReport, BenchError>, u32) {
    let attempts = opts.retries.saturating_add(1);
    let mut last_panic = String::new();
    for attempt in 1..=attempts {
        match panic::catch_unwind(AssertUnwindSafe(|| run_cell(scenario, &opts.run))) {
            Ok(result) => return (result, attempt),
            Err(payload) => last_panic = panic_message(&*payload),
        }
    }
    (Err(BenchError::Panicked { attempts, message: last_panic }), attempts)
}

/// Runs every scenario on a pool of `jobs` worker threads, returning the
/// per-cell results **in input order**. `on_progress` fires on the calling
/// thread once per finished cell.
///
/// Cell failures — unknown scheduler, invalid jobs, runtime faults, even a
/// panicking cell — are reported per cell, never aborting the rest of the
/// grid.
///
/// # Errors
///
/// The outer `Err` is reserved for a panicking `on_progress` callback
/// ([`BenchError::Callback`]): the workers are drained cleanly first, then
/// the panic is surfaced as a value instead of unwinding mid-sweep.
pub fn run_sweep<'s>(
    scenarios: &'s [Scenario],
    jobs: usize,
    on_progress: impl FnMut(Progress<'s>),
) -> Result<Vec<Result<SimReport, BenchError>>, BenchError> {
    run_sweep_opts(scenarios, &SweepOptions::new(jobs), on_progress)
}

/// [`run_sweep`] with explicit [`SweepOptions`] (retry budget, per-cell
/// deadline, fault intensity).
///
/// # Errors
///
/// Same contract as [`run_sweep`].
pub fn run_sweep_opts<'s>(
    scenarios: &'s [Scenario],
    opts: &SweepOptions,
    mut on_progress: impl FnMut(Progress<'s>),
) -> Result<Vec<Result<SimReport, BenchError>>, BenchError> {
    let total = scenarios.len();
    let mut done = 0;
    let (results, callback_panic) = par_map_catching(
        scenarios,
        opts.jobs,
        |s| run_cell_opts(s, opts),
        |i, r, cell_wall| {
            done += 1;
            on_progress(Progress {
                done,
                total,
                scenario: &scenarios[i],
                cell_wall,
                ok: r.is_ok(),
            });
        },
    );
    match callback_panic {
        Some(msg) => Err(BenchError::Callback(msg)),
        None => Ok(results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheduler: &str) -> Scenario {
        Scenario::new(scheduler, Benchmark::Ipv6, ArrivalRate::Low, 4, 1)
    }

    #[test]
    fn scenario_round_trips_through_strings() {
        for s in [
            Scenario::new("LAX", Benchmark::Ipv6, ArrivalRate::High, 128, 20210301),
            Scenario::new("LAX-SW", Benchmark::Hybrid, ArrivalRate::Medium, 1, 0),
            Scenario::new("RR", Benchmark::Stem, ArrivalRate::Low, 64, u64::MAX),
        ] {
            let text = s.to_string();
            assert_eq!(text.parse::<Scenario>().unwrap(), s, "{text}");
        }
    }

    #[test]
    fn scenario_parse_rejects_malformed_input() {
        // (input, expected fragment of the reason) — every arm of the
        // parser's error handling, so CLI typos always get a diagnosis.
        for (bad, why) in [
            ("", "1 fields"),
            ("LAX", "1 fields"),
            ("LAX:IPV6:high:j128", "4 fields"),
            ("LAX:IPV6:high:j128:s42:extra", "6 fields"),
            ("LAX:WARP9:high:j128:s42", "WARP9"),
            ("LAX:IPV6:sometimes:j128:s42", "sometimes"),
            ("LAX:IPV6:high:128:s42", "bad job count"),
            ("LAX:IPV6:high:j128:42", "bad seed"),
            ("LAX:IPV6:high:jxx:s42", "bad job count"),
            ("LAX:IPV6:high:j128:sQQ", "bad seed"),
            (":IPV6:high:j128:s42", "empty scheduler"),
        ] {
            let err = bad.parse::<Scenario>();
            assert!(err.is_err(), "`{bad}` should not parse");
            let msg = err.unwrap_err().to_string();
            assert!(msg.contains("invalid scenario"), "{msg}");
            assert!(msg.contains(why), "`{bad}` should diagnose `{why}`, got: {msg}");
            assert!(msg.contains(bad), "the error must echo the input: {msg}");
        }
    }

    #[test]
    fn cell_seeds_pair_schedulers_but_differ_across_workloads() {
        let a = Scenario::new("RR", Benchmark::Ipv6, ArrivalRate::High, 128, 1);
        let b = Scenario::new("LAX", Benchmark::Ipv6, ArrivalRate::High, 128, 1);
        let c = Scenario::new("RR", Benchmark::Stem, ArrivalRate::High, 128, 1);
        let d = Scenario::new("RR", Benchmark::Ipv6, ArrivalRate::Low, 128, 1);
        let e = Scenario::new("RR", Benchmark::Ipv6, ArrivalRate::High, 64, 1);
        assert_eq!(
            a.cell_seed(),
            b.cell_seed(),
            "schedulers compared on the same workload must see identical jobs"
        );
        assert_ne!(a.cell_seed(), c.cell_seed());
        assert_ne!(a.cell_seed(), d.cell_seed());
        assert_ne!(a.cell_seed(), e.cell_seed());
        assert_eq!(a.cell_seed(), a.clone().cell_seed());
        assert_ne!(
            a.cell_seed(),
            Scenario { seed: 2, ..a.clone() }.cell_seed(),
            "base seed must perturb the cell stream"
        );
    }

    #[test]
    fn schedulers_in_one_workload_column_get_identical_job_traces() {
        let suite = BenchmarkSuite::calibrated();
        let rr = tiny("RR");
        let lax = tiny("LAX");
        let jobs_rr = suite.generate_jobs(rr.bench, rr.rate, rr.n_jobs, rr.cell_seed());
        let jobs_lax = suite.generate_jobs(lax.bench, lax.rate, lax.n_jobs, lax.cell_seed());
        assert_eq!(
            format!("{jobs_rr:?}"),
            format!("{jobs_lax:?}"),
            "paired comparison requires one shared job trace per column"
        );
    }

    #[test]
    fn unknown_scheduler_is_a_typed_error_not_a_panic() {
        let err = run_cell(&tiny("WARP-SPEED"), &RunOptions::default()).unwrap_err();
        match &err {
            BenchError::UnknownScheduler(e) => assert_eq!(e.name(), "WARP-SPEED"),
            other => panic!("expected UnknownScheduler, got {other:?}"),
        }
        assert!(err.to_string().contains("WARP-SPEED"));
    }

    #[test]
    fn sweep_reports_bad_cells_without_aborting_good_ones() {
        let scenarios = vec![tiny("RR"), tiny("NOPE"), tiny("EDF")];
        let mut seen = 0;
        let results = run_sweep(&scenarios, 2, |p| {
            seen += 1;
            assert_eq!(p.total, 3);
        })
        .unwrap();
        assert_eq!(seen, 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(BenchError::UnknownScheduler(_))));
        assert!(results[2].is_ok());
    }

    #[test]
    fn sweeps_are_deterministic_across_thread_counts() {
        let scenarios: Vec<Scenario> = ["RR", "EDF", "LAX", "SJF"]
            .iter()
            .flat_map(|s| {
                [ArrivalRate::High, ArrivalRate::Low]
                    .into_iter()
                    .map(|r| Scenario::new(s, Benchmark::Ipv6, r, 6, 7))
            })
            .collect();
        let serial = run_sweep(&scenarios, 1, |_| {}).unwrap();
        let parallel = run_sweep(&scenarios, 8, |_| {}).unwrap();
        for ((s, a), b) in scenarios.iter().zip(&serial).zip(&parallel) {
            let a = a.as_ref().expect("serial cell ran");
            let b = b.as_ref().expect("parallel cell ran");
            assert_eq!(a, b, "{s} must be bit-identical across thread counts");
        }
    }

    #[test]
    fn jobs_flag_parses_and_leaves_positionals() {
        let argv = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter();
        let (j, rest) = jobs_from_cli(argv(&["128", "--jobs", "3", "x"]));
        assert_eq!(j, 3);
        assert_eq!(rest, vec!["128".to_string(), "x".to_string()]);
        let (j, rest) = jobs_from_cli(argv(&["--jobs=5"]));
        assert_eq!(j, 5);
        assert!(rest.is_empty());
        let (j, _) = jobs_from_cli(argv(&["-j", "2"]));
        assert_eq!(j, 2);
        // A bad value is ignored, leaving the default.
        let (j, _) = jobs_from_cli(argv(&["--jobs", "zero"]));
        assert!(j >= 1);
    }

    #[test]
    fn jobs_flag_missing_value_does_not_eat_the_next_flag() {
        let argv = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter();
        // `--jobs --verbose`: --verbose is not a value; it must survive.
        let (j, rest) = jobs_from_cli(argv(&["--jobs", "--verbose"]));
        assert!(j >= 1);
        assert_eq!(rest, vec!["--verbose".to_string()]);
        let (j, rest) = jobs_from_cli(argv(&["-j"]));
        assert!(j >= 1);
        assert!(rest.is_empty());
        let (j, rest) = jobs_from_cli(argv(&["-j", "-j", "2"]));
        assert_eq!(j, 2);
        assert!(rest.is_empty());
    }

    #[test]
    #[should_panic(expected = "contains ':'")]
    fn scenario_new_rejects_colon_in_scheduler_name() {
        let _ = Scenario::new("LAX:EVIL", Benchmark::Ipv6, ArrivalRate::High, 1, 1);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_cell_becomes_a_typed_error_after_bounded_retries() {
        // A negative intensity trips an assert inside the cell body — a
        // stand-in for any cell-local panic. The sweep must isolate it.
        let scenarios = vec![tiny("RR"), tiny("EDF")];
        let opts = SweepOptions::new(2).retries(2).fault_intensity(-1.0);
        let results = run_sweep_opts(&scenarios, &opts, |_| {}).unwrap();
        for r in &results {
            match r {
                Err(BenchError::Panicked { attempts, message }) => {
                    assert_eq!(*attempts, 3, "1 try + 2 retries");
                    assert!(message.contains("non-negative"), "{message}");
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn callback_panic_is_drained_and_surfaced_not_propagated() {
        let scenarios = vec![tiny("RR"), tiny("EDF"), tiny("LAX"), tiny("SJF")];
        let mut calls = 0;
        let err = run_sweep(&scenarios, 2, |_| {
            calls += 1;
            panic!("boom in progress bar");
        })
        .unwrap_err();
        match err {
            BenchError::Callback(msg) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Callback, got {other:?}"),
        }
        assert_eq!(calls, 1, "callback must not be re-entered after panicking");
    }

    #[test]
    fn cell_deadline_times_out_as_a_typed_error() {
        let scenarios = vec![tiny("RR")];
        let opts = SweepOptions::new(1).cell_deadline(WallDuration::ZERO);
        let results = run_sweep_opts(&scenarios, &opts, |_| {}).unwrap();
        match &results[0] {
            Err(BenchError::DeadlineExceeded { limit }) => {
                assert_eq!(*limit, WallDuration::ZERO);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_cell_deadline_still_returns_the_report() {
        let scenarios = vec![tiny("RR")];
        let opts = SweepOptions::new(1).cell_deadline(WallDuration::from_secs(300));
        let deadline = run_sweep_opts(&scenarios, &opts, |_| {}).unwrap();
        let plain = run_sweep(&scenarios, 1, |_| {}).unwrap();
        assert_eq!(
            deadline[0].as_ref().unwrap(),
            plain[0].as_ref().unwrap(),
            "the helper-thread path must not perturb results"
        );
    }

    #[test]
    fn zero_intensity_fault_path_is_bit_identical_to_a_fault_free_build() {
        // The fault-free contract, end to end at the harness layer: running
        // through `run_cell` with default options (which installs
        // `FaultPlan::none()`) must reproduce a simulation built without
        // ever touching the faults API, for multiple schedulers.
        let suite = BenchmarkSuite::calibrated();
        for sched in ["RR", "LAX"] {
            let s = Scenario::new(sched, Benchmark::Ipv6, ArrivalRate::High, 12, 3);
            let jobs = suite.generate_jobs(s.bench, s.rate, s.n_jobs, s.cell_seed());
            let mut sim = Simulation::builder()
                .offline_rates(suite.offline_rates())
                .jobs(jobs)
                .scheduler(registry::try_build(sched).unwrap())
                .build()
                .unwrap();
            let bare = sim.run();
            let defaulted = run_cell(&s, &RunOptions::default()).unwrap();
            assert_eq!(bare, defaulted, "{sched}: FaultPlan::none() must be a no-op");
        }
    }

    #[test]
    fn observers_do_not_perturb_cell_reports() {
        // The tentpole determinism contract: attaching the full observer
        // stack (time-series sampler + Chrome trace writer) must leave the
        // report bit-identical to an unobserved run, for every scheduler
        // family on the same cell.
        for sched in ["RR", "EDF", "LAX"] {
            let s = Scenario::new(sched, Benchmark::Ipv6, ArrivalRate::High, 12, 3);
            let plain = run_cell(&s, &RunOptions::default()).unwrap();
            let sampler = Arc::new(Mutex::new(MetricsSampler::new()));
            let writer = Arc::new(Mutex::new(ChromeTraceWriter::new()));
            let opts = RunOptions::default().observe(sampler.clone()).observe(writer.clone());
            let observed = run_cell(&s, &opts).unwrap();
            assert_eq!(plain, observed, "{sched}: observers must not perturb the run");
            assert!(
                !sampler.lock().unwrap().series().is_empty(),
                "{sched}: the sampler actually saw snapshots"
            );
            assert!(
                !writer.lock().unwrap().is_empty(),
                "{sched}: the trace writer actually saw spans"
            );
        }
    }

    #[test]
    fn nonzero_intensity_changes_outcomes_but_stays_deterministic() {
        let s = Scenario::new("RR", Benchmark::Ipv6, ArrivalRate::High, 16, 3);
        let storm = RunOptions::default().fault_intensity(1.0);
        let a = run_cell(&s, &storm).unwrap();
        let b = run_cell(&s, &storm).unwrap();
        assert_eq!(a, b, "same intensity, same storm, same report");
        let clean = run_cell(&s, &RunOptions::default()).unwrap();
        assert_ne!(a, clean, "an intensity-1.0 storm must perturb the run");
    }

    #[test]
    fn deadline_and_panic_compose_into_the_panicked_error() {
        // A cell that panics *before* its generous deadline must surface as
        // Panicked, not DeadlineExceeded: the helper thread re-raises the
        // panic on the caller, and the retry loop converts it.
        let s = tiny("RR");
        let opts = SweepOptions::new(1)
            .retries(0)
            .cell_deadline(WallDuration::from_secs(300))
            .fault_intensity(-1.0);
        match run_cell_profiled(&s, &opts) {
            (Err(BenchError::Panicked { attempts: 1, message }), 1) => {
                assert!(message.contains("non-negative"), "{message}");
            }
            other => panic!("expected Panicked after 1 attempt, got {other:?}"),
        }
    }
}
