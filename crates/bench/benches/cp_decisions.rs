//! Microbenchmarks of the command-processor scheduling decisions.
//!
//! The paper's premise is that per-kernel scheduling decisions must happen
//! at microsecond timescales (Section 1). These benches verify our LAX
//! implementation's decision costs are comfortably inside that envelope
//! even for the full 128-queue configuration: a priority-update tick over
//! every busy queue, one admission evaluation, and one remaining-time
//! estimate.
//!
//! Self-hosted harness (no external deps; the registry is offline).

use std::hint::black_box;
use std::sync::Arc;

use gpu_sim::config::GpuConfig;
use gpu_sim::counters::Counters;
use gpu_sim::job::{JobDesc, JobId, JobState};
use gpu_sim::kernel::{ComputeProfile, KernelClassId, KernelDesc};
use gpu_sim::queue::{ActiveJob, ComputeQueue};
use gpu_sim::scheduler::{CpContext, CpScheduler, Occupancy};
use lax::estimate::{remaining_time_us, LiveRates};
use lax::lax::Lax;
use sim_core::probe::ProbeHub;
use sim_core::time::{Cycle, Duration};

/// Times `f` over `iters` iterations (after warmup) and prints ns/iter.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters / 10 + 1 {
        black_box(f());
    }
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

fn busy_queues(n: usize, kernels_per_job: usize) -> Vec<ComputeQueue> {
    (0..n)
        .map(|i| {
            let kernels: Vec<Arc<KernelDesc>> = (0..kernels_per_job)
                .map(|k| {
                    Arc::new(KernelDesc::new(
                        KernelClassId((k % 6) as u16),
                        format!("k{k}"),
                        1024,
                        256,
                        16,
                        0,
                        ComputeProfile::compute_only(1_000),
                    ))
                })
                .collect();
            let desc = Arc::new(
                JobDesc::chain(JobId(i as u32), "bench", kernels, Duration::from_ms(7), Cycle::ZERO)
                    .unwrap(),
            );
            let mut a = ActiveJob::new(desc, Cycle::ZERO);
            a.state = JobState::Running;
            ComputeQueue { active: Some(a) }
        })
        .collect()
}

fn warmed_counters() -> Counters {
    let mut c = Counters::new(8, Duration::from_us(100));
    for class in 0..6u16 {
        for _ in 0..64 {
            c.note_wg_placed(KernelClassId(class), Cycle::ZERO);
        }
        for _ in 0..64 {
            c.record_wg(KernelClassId(class), Cycle::ZERO + Duration::from_us(50));
        }
    }
    c.refresh(Cycle::ZERO + Duration::from_us(50));
    c
}

fn bench_priority_tick() {
    for (n_queues, kernels) in [(16, 8), (64, 8), (128, 8), (128, 102)] {
        let mut queues = busy_queues(n_queues, kernels);
        let mut counters = warmed_counters();
        let cfg = GpuConfig::default();
        let mut lax = Lax::new();
        let mut probes = ProbeHub::new();
        bench(&format!("lax_priority_tick/{n_queues}q_{kernels}k"), 2_000, || {
            let mut ctx = CpContext {
                now: Cycle::ZERO + Duration::from_us(100),
                queues: &mut queues,
                counters: &mut counters,
                occupancy: Occupancy::default(),
                config: &cfg,
                probes: &mut probes,
            };
            lax.on_tick(&mut ctx);
        });
    }
}

fn bench_admission() {
    for n_queues in [16usize, 128] {
        let mut queues = busy_queues(n_queues, 8);
        queues[n_queues - 1].job_mut().state = JobState::Init;
        let mut counters = warmed_counters();
        let cfg = GpuConfig::default();
        let mut lax = Lax::new();
        let mut probes = ProbeHub::new();
        bench(&format!("lax_admission/{n_queues}"), 2_000, || {
            let mut ctx = CpContext {
                now: Cycle::ZERO + Duration::from_us(100),
                queues: &mut queues,
                counters: &mut counters,
                occupancy: Occupancy::default(),
                config: &cfg,
                probes: &mut probes,
            };
            lax.admit(&mut ctx, n_queues - 1)
        });
    }
}

fn bench_estimator() {
    let queues = busy_queues(1, 102);
    let mut counters = warmed_counters();
    let job = queues[0].job().clone();
    bench("remaining_time_102_kernels", 5_000, || {
        let mut rates = LiveRates::new(&mut counters, Cycle::ZERO + Duration::from_us(100));
        remaining_time_us(&job, &mut rates)
    });
}

fn main() {
    bench_priority_tick();
    bench_admission();
    bench_estimator();
}
