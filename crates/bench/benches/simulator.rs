//! Substrate microbenchmarks: event-queue operations, cache probes, DRAM
//! channel arbitration, and whole small simulations per scheduler group —
//! the knobs that determine how fast the reproduction can sweep the
//! paper's experiment matrix.
//!
//! Self-hosted harness (no external deps; the registry is offline): each
//! bench is warmed up, then timed over a fixed iteration count and reported
//! as ns/iter.

use std::hint::black_box;

use gpu_sim::cache::SetAssocCache;
use gpu_sim::dram::Dram;
use lax_bench::sweep::Scenario;
use sim_core::event::EventQueue;
use sim_core::time::Cycle;
use workloads::spec::{ArrivalRate, Benchmark};

/// Times `f` over `iters` iterations (after `iters / 10 + 1` warmup calls)
/// and prints a criterion-style ns/iter line.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters / 10 + 1 {
        black_box(f());
    }
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<40} {per_iter:>12} ns/iter ({iters} iters)");
}

fn bench_event_queue() {
    bench("event_queue_push_pop_1k", 500, || {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(Cycle::from_cycles((i * 7919) % 10_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
}

fn bench_cache() {
    let mut cache = SetAssocCache::new(4 * 1024 * 1024, 16, 64);
    let mut addr = 0u64;
    bench("l2_probe_streaming_4k", 500, || {
        let mut hits = 0;
        for _ in 0..4_096 {
            addr = addr.wrapping_add(64);
            if cache.probe(addr) == gpu_sim::cache::ProbeResult::Hit {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_dram() {
    let mut dram = Dram::new(16, 220, 4);
    let mut t = Cycle::ZERO;
    let mut addr = 0u64;
    bench("dram_access_4k", 500, || {
        for _ in 0..4_096 {
            addr = addr.wrapping_add(64 * 3);
            t = dram.access(addr, t);
        }
        t
    });
}

fn bench_end_to_end() {
    for sched in ["RR", "LAX", "PREMA", "LAX-SW"] {
        let scenario = Scenario::new(sched, Benchmark::Ipv6, ArrivalRate::Medium, 16, 7);
        bench(&format!("small_simulation/{sched}"), 20, || {
            lax_bench::run_cell(&scenario, &lax_bench::RunOptions::default())
                .expect("known scheduler")
        });
    }
}

fn main() {
    bench_event_queue();
    bench_cache();
    bench_dram();
    bench_end_to_end();
}
