//! Substrate microbenchmarks: event-queue operations, cache probes, DRAM
//! channel arbitration, and whole small simulations per scheduler group —
//! the knobs that determine how fast the reproduction can sweep the
//! paper's experiment matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::cache::SetAssocCache;
use gpu_sim::dram::Dram;
use sim_core::event::EventQueue;
use sim_core::time::Cycle;
use workloads::spec::{ArrivalRate, Benchmark};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(Cycle::from_cycles((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l2_probe_streaming_4k", |b| {
        let mut cache = SetAssocCache::new(4 * 1024 * 1024, 16, 64);
        let mut addr = 0u64;
        b.iter(|| {
            let mut hits = 0;
            for _ in 0..4_096 {
                addr = addr.wrapping_add(64);
                if cache.probe(addr) == gpu_sim::cache::ProbeResult::Hit {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_access_4k", |b| {
        let mut dram = Dram::new(16, 220, 4);
        let mut t = Cycle::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..4_096 {
                addr = addr.wrapping_add(64 * 3);
                t = dram.access(addr, t);
            }
            t
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("small_simulation");
    group.sample_size(10);
    for sched in ["RR", "LAX", "PREMA", "LAX-SW"] {
        group.bench_with_input(BenchmarkId::from_parameter(sched), &sched, |b, &s| {
            b.iter(|| lax_bench::run_once(s, Benchmark::Ipv6, ArrivalRate::Medium, 16, 7));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_event_queue, bench_cache, bench_dram, bench_end_to_end
}
criterion_main!(benches);
