//! Terminal bar charts for the experiment binaries: a quick visual of the
//! normalized figures next to their tables.

use std::fmt::Write as _;

/// A horizontal ASCII bar chart.
///
/// # Examples
///
/// ```
/// use sim_core::chart::BarChart;
///
/// let mut c = BarChart::new(20);
/// c.bar("RR", 1.0);
/// c.bar("LAX", 4.2);
/// let s = c.render();
/// assert!(s.contains("LAX"));
/// assert!(s.lines().count() == 2);
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a chart whose largest bar spans `width` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "chart width must be positive");
        BarChart { width, bars: Vec::new() }
    }

    /// Adds a labelled bar.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        assert!(value.is_finite() && value >= 0.0, "bar values must be non-negative");
        self.bars.push((label.into(), value));
        self
    }

    /// Renders the chart, one `label |#### value` line per bar.
    pub fn render(&self) -> String {
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (label, value) in &self.bars {
            let n = if max > 0.0 {
                ((value / max) * self.width as f64).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "{label:<label_w$} |{} {value:.2}",
                "#".repeat(n)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let mut c = BarChart::new(10);
        c.bar("a", 5.0).bar("b", 10.0);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 5);
        assert_eq!(lines[1].matches('#').count(), 10);
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let mut c = BarChart::new(10);
        c.bar("x", 0.0);
        assert!(c.render().contains("| 0.00"));
    }

    #[test]
    #[should_panic]
    fn negative_values_panic() {
        BarChart::new(10).bar("bad", -1.0);
    }
}
