//! # sim-core
//!
//! Foundations for the LAX reproduction's discrete-event GPU simulator:
//!
//! * [`time`] — cycle-granular simulated time ([`time::Cycle`] instants and
//!   [`time::Duration`] spans at 1.5 GHz).
//! * [`event`] — a deterministic event queue with lazy cancellation.
//! * [`rng`] — seeded RNG with exponential-arrival and sequence-length
//!   samplers.
//! * [`stats`] — exact percentiles, a bounded-memory streaming quantile
//!   sketch with a p999 tier for million-job runs, geometric means, and the
//!   sliding rate-window counter that models the paper's
//!   workgroup-completion-rate hardware counter.
//! * [`trace`] — bounded time-series capture for Figure-10 style plots.
//! * [`probe`] — generic observer/probe bus for zero-overhead-when-off
//!   instrumentation of a running simulation.
//! * [`json`] — string escaping and a strict syntax validator for the
//!   hand-rolled JSON trace emitters (std-only workspace, no serde).
//! * [`table`] — plain-text result tables for the experiment binaries.
//! * [`chart`] — terminal bar charts for quick visual comparisons.
//!
//! Everything here is deliberately independent of the GPU model so it can be
//! reused by any event-driven simulator.
//!
//! # Examples
//!
//! Run a tiny three-event simulation:
//!
//! ```
//! use sim_core::event::EventQueue;
//! use sim_core::time::{Cycle, Duration};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycle::ZERO + Duration::from_us(2), "b");
//! q.schedule(Cycle::ZERO + Duration::from_us(1), "a");
//! let mut seen = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     seen.push((t.as_us_f64(), ev));
//! }
//! assert_eq!(seen, vec![(1.0, "a"), (2.0, "b")]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chart;
pub mod event;
pub mod json;
pub mod probe;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use probe::{Observer, ProbeHub};
pub use rng::SimRng;
pub use time::{Cycle, Duration};
