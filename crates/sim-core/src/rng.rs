//! Deterministic random number generation for simulations.
//!
//! All stochastic inputs (arrival times, sequence lengths, address noise) draw
//! from a [`SimRng`] seeded from the experiment configuration, so every run is
//! exactly reproducible.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64, so the crate has no external dependencies and the
//! streams are identical on every platform.

use crate::time::Duration;

/// SplitMix64 step: used to expand a 64-bit seed into the xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded pseudo-random generator with the sampling helpers the workloads
/// need.
///
/// # Examples
///
/// ```
/// use sim_core::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream; `salt` distinguishes siblings.
    ///
    /// Used to give each benchmark/scheduler pair its own stream so adding a
    /// scheduler never perturbs another's arrivals.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 high bits -> uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift; the bias is < 2^-64 per draw, far below
        // anything a simulation statistic can resolve.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Samples an exponential inter-arrival gap for a Poisson process with
    /// `rate_per_sec` events per second, as the paper does for job arrivals
    /// (Section 5.3).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive.
    pub fn exp_interarrival(&mut self, rate_per_sec: f64) -> Duration {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.uniform_f64().max(1e-12);
        let secs = -u.ln() / rate_per_sec;
        Duration::from_us_f64(secs * 1e6)
    }

    /// Samples a geometric-like sequence length with the given mean,
    /// truncated to `[min, max]`.
    ///
    /// Used for RNN sequence lengths (WMT'15 trace has mean 16). The
    /// truncated geometric keeps the long tail that makes LJF/SJF behave
    /// distinctly in the paper.
    pub fn seq_length(&mut self, mean: f64, min: u32, max: u32) -> u32 {
        assert!(mean > 1.0 && min >= 1 && min <= max);
        // Geometric on {1,2,...} with success prob p has mean 1/p.
        let p = 1.0 / mean;
        let u = self.uniform_f64().max(1e-12);
        let k = (u.ln() / (1.0 - p).ln()).ceil() as u32;
        k.clamp(min, max)
    }

    /// Multiplicative noise factor `1 ± spread`, uniform.
    ///
    /// `spread` must be in `[0, 1)`.
    pub fn noise(&mut self, spread: f64) -> f64 {
        assert!((0.0..1.0).contains(&spread));
        1.0 + (self.uniform_f64() * 2.0 - 1.0) * spread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_sibling_count() {
        let mut root1 = SimRng::seed_from(1);
        let mut root2 = SimRng::seed_from(1);
        let mut f1 = root1.fork(10);
        let mut f2 = root2.fork(10);
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval_and_varies() {
        let mut rng = SimRng::seed_from(11);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
            distinct.insert(u.to_bits());
        }
        assert!(distinct.len() > 990, "draws should almost never collide");
    }

    #[test]
    fn below_is_in_range_and_covers_small_domains() {
        let mut rng = SimRng::seed_from(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exp_interarrival_has_roughly_correct_mean() {
        let mut rng = SimRng::seed_from(99);
        let rate = 8_000.0; // jobs per second -> mean gap 125us
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_interarrival(rate).as_us_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 125.0).abs() < 5.0, "mean gap {mean}us, expected ~125us");
    }

    #[test]
    fn seq_length_has_roughly_correct_mean_and_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let mut total = 0u64;
        for _ in 0..n {
            let l = rng.seq_length(16.0, 1, 64);
            assert!((1..=64).contains(&l));
            total += l as u64;
        }
        let mean = total as f64 / n as f64;
        assert!((mean - 16.0).abs() < 1.5, "mean seq length {mean}, expected ~16");
    }

    #[test]
    fn noise_stays_in_band() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let f = rng.noise(0.1);
            assert!((0.9..=1.1).contains(&f));
        }
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
