//! A deterministic discrete-event queue with O(log n) scheduling and lazy
//! cancellation.
//!
//! Events at equal timestamps pop in scheduling order (FIFO), which makes
//! whole-simulation runs bit-for-bit reproducible for a fixed RNG seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// Handle to a scheduled event, used to cancel it before it fires.
///
/// Ids are unique for the lifetime of one [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest seq)
        // pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events.
///
/// Cancellation is *lazy*: cancelled entries stay in the heap and are skipped
/// on pop, so `cancel` is O(1).
///
/// # Examples
///
/// ```
/// use sim_core::event::EventQueue;
/// use sim_core::time::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::from_cycles(20), "second");
/// let id = q.schedule(Cycle::from_cycles(5), "dropped");
/// q.schedule(Cycle::from_cycles(10), "first");
/// q.cancel(id);
/// assert_eq!(q.pop(), Some((Cycle::from_cycles(10), "first")));
/// assert_eq!(q.pop(), Some((Cycle::from_cycles(20), "second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    now: Cycle,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: Cycle::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the current
    /// simulation time).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// release builds clamp to `now` to keep long runs alive.
    pub fn schedule(&mut self, at: Cycle, payload: E) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Pops the earliest live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("live", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::from_cycles(30), 3);
        q.schedule(Cycle::from_cycles(10), 1);
        q.schedule(Cycle::from_cycles(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Cycle::from_cycles(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle::from_cycles(1), "a");
        q.schedule(Cycle::from_cycles(2), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle::from_cycles(1), "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule(Cycle::from_cycles(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::ZERO + Duration::from_us(1), ());
        q.pop();
        assert_eq!(q.now(), Cycle::from_cycles(1500));
    }

    #[test]
    fn peek_time_sees_through_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle::from_cycles(1), ());
        q.schedule(Cycle::from_cycles(7), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Cycle::from_cycles(7)));
    }
}
