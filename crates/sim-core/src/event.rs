//! A deterministic discrete-event queue with O(log n) scheduling and lazy
//! cancellation.
//!
//! Events at equal timestamps pop in scheduling order (FIFO), which makes
//! whole-simulation runs bit-for-bit reproducible for a fixed RNG seed.

use crate::time::Cycle;

/// Handle to a scheduled event, used to cancel it before it fires.
///
/// Ids are unique for the lifetime of one [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

/// A 4-ary min-heap on `(at, seq)`. Quarter the depth of a binary heap and
/// children share a cache line, which matters because heap churn sits on the
/// simulator's hot path. Keys are unique (`seq` never repeats), so pop order
/// is the same total order any correct heap would produce.
struct Min4<E> {
    v: Vec<Entry<E>>,
}

impl<E> Min4<E> {
    const ARITY: usize = 4;

    fn new() -> Self {
        Min4 { v: Vec::new() }
    }

    #[inline]
    fn key(&self, i: usize) -> (Cycle, u64) {
        (self.v[i].at, self.v[i].seq)
    }

    #[inline]
    fn len(&self) -> usize {
        self.v.len()
    }

    #[inline]
    fn peek(&self) -> Option<&Entry<E>> {
        self.v.first()
    }

    fn push(&mut self, e: Entry<E>) {
        self.v.push(e);
        let mut i = self.v.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.key(i) < self.key(parent) {
                self.v.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.v.is_empty() {
            return None;
        }
        let last = self.v.len() - 1;
        self.v.swap(0, last);
        let out = self.v.pop();
        self.sift_down(0);
        out
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.v.len();
        loop {
            let first = Self::ARITY * i + 1;
            if first >= n {
                break;
            }
            let mut m = first;
            for c in first + 1..(first + Self::ARITY).min(n) {
                if self.key(c) < self.key(m) {
                    m = c;
                }
            }
            if self.key(m) < self.key(i) {
                self.v.swap(i, m);
                i = m;
            } else {
                break;
            }
        }
    }

    /// Rebuilds the heap property over arbitrary contents in O(n).
    fn heapify(v: Vec<Entry<E>>) -> Self {
        let mut h = Min4 { v };
        if h.v.len() > 1 {
            for i in (0..=(h.v.len() - 2) / Self::ARITY).rev() {
                h.sift_down(i);
            }
        }
        h
    }
}

/// Priority queue of timestamped events.
///
/// Cancellation is *lazy*: cancelled entries stay in the heap and are skipped
/// on pop, so `cancel` is amortized O(1). When cancelled entries outnumber
/// half the heap the queue compacts itself — rebuilding the heap without the
/// dead entries — so a schedule/cancel storm keeps memory proportional to the
/// number of *live* events instead of growing without bound.
///
/// # Examples
///
/// ```
/// use sim_core::event::EventQueue;
/// use sim_core::time::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::from_cycles(20), "second");
/// let id = q.schedule(Cycle::from_cycles(5), "dropped");
/// q.schedule(Cycle::from_cycles(10), "first");
/// q.cancel(id);
/// assert_eq!(q.pop(), Some((Cycle::from_cycles(10), "first")));
/// assert_eq!(q.pop(), Some((Cycle::from_cycles(20), "second")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: Min4<E>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    now: Cycle,
    /// Bumped by every operation that can change the live head (schedule,
    /// pop, cancel), so hot loops can cache [`EventQueue::peek_key`] and
    /// recompute it only when this moves. Lazy cancelled-entry cleanup
    /// inside peeks does not bump it: the live head is unaffected.
    version: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Min4::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            now: Cycle::ZERO,
            version: 0,
        }
    }

    /// The timestamp of the most recently popped event (the current
    /// simulation time).
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// release builds clamp to `now` to keep long runs alive.
    pub fn schedule(&mut self, at: Cycle, payload: E) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.version += 1;
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Reserves the next tie-break sequence number without scheduling an
    /// event.
    ///
    /// Callers that track deadlines *outside* the queue (e.g. a polled
    /// next-completion prediction) use stamps to give those deadlines a
    /// total order against scheduled events: an external deadline
    /// `(t, stamp)` fires before a queued event `(t', seq)` iff
    /// `(t, stamp) < (t', seq)` lexicographically — exactly the order the
    /// deadline would have popped in had it been scheduled at the moment
    /// the stamp was taken.
    pub fn stamp(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.version += 1;
        self.cancelled.insert(id.0);
        if self.cancelled.len() * 2 > self.heap.len() {
            self.compact();
        }
    }

    /// Rebuilds the heap without cancelled entries. Ids left in `cancelled`
    /// afterwards referenced already-fired events (cancel-after-fire
    /// no-ops); dropping them keeps [`EventQueue::len`] exact.
    fn compact(&mut self) {
        let mut entries = std::mem::replace(&mut self.heap, Min4::new()).v;
        entries.retain(|e| !self.cancelled.contains(&e.seq));
        self.cancelled.clear();
        self.heap = Min4::heapify(entries);
    }

    /// Pops the earliest live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.version += 1;
        while let Some(entry) = self.heap.pop() {
            if !self.cancelled.is_empty() && self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        self.peek_key().map(|(at, _)| at)
    }

    /// `(timestamp, sequence)` of the next live event without popping it.
    ///
    /// The pair orders the queue head against externally-tracked deadlines
    /// stamped with [`EventQueue::stamp`].
    pub fn peek_key(&mut self) -> Option<(Cycle, u64)> {
        if self.cancelled.is_empty() {
            return self.heap.peek().map(|e| (e.at, e.seq));
        }
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some((entry.at, entry.seq));
        }
        None
    }

    /// Monotonic counter of live-head-affecting operations; see the field
    /// doc. Equal versions across two calls guarantee an unchanged
    /// [`EventQueue::peek_key`] result.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("live", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::from_cycles(30), 3);
        q.schedule(Cycle::from_cycles(10), 1);
        q.schedule(Cycle::from_cycles(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Cycle::from_cycles(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle::from_cycles(1), "a");
        q.schedule(Cycle::from_cycles(2), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle::from_cycles(1), "a");
        assert!(q.pop().is_some());
        q.cancel(a);
        q.schedule(Cycle::from_cycles(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::ZERO + Duration::from_us(1), ());
        q.pop();
        assert_eq!(q.now(), Cycle::from_cycles(1500));
    }

    #[test]
    fn peek_time_sees_through_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycle::from_cycles(1), ());
        q.schedule(Cycle::from_cycles(7), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Cycle::from_cycles(7)));
    }

    #[test]
    fn peek_key_matches_pop_order() {
        let mut q = EventQueue::new();
        let t = Cycle::from_cycles(9);
        q.schedule(t, "first");
        let external = q.stamp();
        q.schedule(t, "second");
        // The queue head at the same timestamp but an earlier seq outranks
        // the external stamp; after it pops, the stamp outranks "second".
        let head = q.peek_key().unwrap();
        assert!(head < (t, external));
        q.pop();
        let head = q.peek_key().unwrap();
        assert!((t, external) < head);
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn cancel_storm_keeps_heap_bounded() {
        let mut q = EventQueue::new();
        let mut peak = 0usize;
        let mut survivors = Vec::new();
        for i in 0u64..10_000 {
            let id = q.schedule(Cycle::from_cycles(10_000 + i), i);
            if i % 8 == 0 {
                survivors.push(i);
            } else {
                q.cancel(id);
            }
            peak = peak.max(q.heap.len());
            // Compaction fires whenever dead entries exceed half the heap,
            // so the heap never holds more than live + dead <= 2*live + 1.
            assert!(
                q.heap.len() <= 2 * q.len() + 1,
                "heap {} not bounded by live {}",
                q.heap.len(),
                q.len()
            );
        }
        assert!(peak <= 2 * survivors.len() + 2, "peak heap {peak} unbounded");
        assert_eq!(q.len(), survivors.len());
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, survivors);
    }

    #[test]
    fn pop_order_unchanged_through_compaction() {
        // Interleave schedules, cancels, and pops (including equal-time FIFO
        // runs) and check against a naive sorted model.
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (time, id), id = insertion order
        let mut next_id = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        let mut rng = 0x9e3779b97f4a7c15u64;
        let step = |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            *s
        };
        for round in 0..200 {
            let base = 1_000 * (round + 1);
            let mut ids = Vec::new();
            for _ in 0..20 {
                let t = base + step(&mut rng) % 5; // lots of equal-time ties
                ids.push((q.schedule(Cycle::from_cycles(t), next_id), t, next_id));
                model.push((t, next_id));
                next_id += 1;
            }
            for &(id, t, payload) in &ids {
                if step(&mut rng) % 3 != 0 {
                    q.cancel(id);
                    model.retain(|&(mt, mid)| !(mt == t && mid == payload));
                }
            }
            for _ in 0..5 {
                if let Some((_, e)) = q.pop() {
                    popped.push(e);
                    model.sort(); // (time, insertion id): FIFO at equal times
                    expected.push(model.remove(0).1);
                }
            }
        }
        while let Some((_, e)) = q.pop() {
            popped.push(e);
            model.sort();
            expected.push(model.remove(0).1);
        }
        assert!(model.is_empty());
        assert_eq!(popped, expected);
    }
}
