//! Plain-text table formatting for the experiment binaries.
//!
//! The paper reports results as figures and tables; our harness prints
//! aligned ASCII tables that EXPERIMENTS.md embeds verbatim.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use sim_core::table::Table;
///
/// let mut t = Table::new(vec!["bench".into(), "RR".into(), "LAX".into()]);
/// t.row(vec!["LSTM".into(), "1.00".into(), "4.20".into()]);
/// let s = t.render();
/// assert!(s.contains("LSTM"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Table { header, rows: Vec::new() }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Table::new(cols.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a ratio like `4.2x` with two decimals.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_columns(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(4.2), "4.20x");
        assert_eq!(fmt_f(1.23456, 3), "1.235");
    }
}
