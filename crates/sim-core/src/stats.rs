//! Streaming statistics used by the experiment harness: percentiles,
//! geometric means, and fixed-width histograms.

use crate::time::Duration;

/// Collects scalar samples and answers order statistics.
///
/// Samples are kept (they are small: one `f64` per completed job), so
/// percentiles are exact rather than approximated.
///
/// # Examples
///
/// ```
/// use sim_core::stats::Samples;
///
/// let mut s = Samples::new();
/// for v in 1..=100 {
///     s.push(v as f64);
/// }
/// assert_eq!(s.percentile(0.99), 99.0);
/// assert_eq!(s.percentile(0.50), 50.0);
/// assert_eq!(s.len(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN sample");
        self.values.push(v);
        self.sorted = false;
    }

    /// Adds a duration sample in microseconds.
    pub fn push_duration(&mut self, d: Duration) {
        self.push(d.as_us_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Exact `q`-quantile (`q` in `[0,1]`) using the nearest-rank method,
    /// `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
            self.sorted = true;
        }
        let rank = ((q * self.values.len() as f64).ceil() as usize).max(1) - 1;
        self.values[rank.min(self.values.len() - 1)]
    }

    /// Maximum sample, `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

/// Geometric mean of strictly positive values.
///
/// Values `<= 0` are clamped to `epsilon` (1e-9) so a single zero ratio (a
/// scheduler completing no jobs at all, as BAY does on IPV6 in the paper)
/// drags the geomean down without poisoning it into zero, mirroring how such
/// results are conventionally reported.
///
/// Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// use sim_core::stats::geomean;
///
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// assert_eq!(geomean(&[]), 0.0);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A sliding-window event-rate meter.
///
/// Tracks how many events occurred in the last `window` of simulated time;
/// this is exactly the "WG completion rate" counter the paper adds to the
/// GPU (Section 4.1.1). Old events are evicted lazily on read.
#[derive(Debug, Clone)]
pub struct RateWindow {
    window: Duration,
    events: std::collections::VecDeque<(crate::time::Cycle, u64)>,
    total: u64,
}

impl RateWindow {
    /// Creates a meter with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "rate window must be non-zero");
        RateWindow {
            window,
            events: std::collections::VecDeque::new(),
            total: 0,
        }
    }

    /// Records `count` events at time `now`.
    pub fn record(&mut self, now: crate::time::Cycle, count: u64) {
        self.evict(now);
        self.events.push_back((now, count));
        self.total += count;
    }

    /// Events per microsecond over the window ending at `now`.
    pub fn rate_per_us(&mut self, now: crate::time::Cycle) -> f64 {
        self.evict(now);
        self.total as f64 / self.window.as_us_f64()
    }

    /// Raw event count in the window ending at `now`.
    pub fn count(&mut self, now: crate::time::Cycle) -> u64 {
        self.evict(now);
        self.total
    }

    fn evict(&mut self, now: crate::time::Cycle) {
        let cutoff = now - self.window; // saturating
        while let Some(&(t, c)) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
                self.total -= c;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycle;

    #[test]
    fn percentile_nearest_rank() {
        let mut s = Samples::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.push(v);
        }
        assert_eq!(s.percentile(0.25), 10.0);
        assert_eq!(s.percentile(0.5), 20.0);
        assert_eq!(s.percentile(0.99), 40.0);
        assert_eq!(s.percentile(1.0), 40.0);
    }

    #[test]
    fn percentile_after_interleaved_pushes() {
        let mut s = Samples::new();
        s.push(5.0);
        assert_eq!(s.percentile(1.0), 5.0);
        s.push(1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[0.0, 1.0]) < 1e-3);
    }

    #[test]
    fn rate_window_evicts_old_events() {
        let mut w = RateWindow::new(Duration::from_us(100));
        w.record(Cycle::from_cycles(0), 10);
        assert_eq!(w.count(Cycle::from_cycles(0)), 10);
        // Still inside the window.
        assert_eq!(w.count(Cycle::ZERO + Duration::from_us(100)), 10);
        // Now outside.
        assert_eq!(w.count(Cycle::ZERO + Duration::from_us(201)), 0);
    }

    #[test]
    fn rate_window_rate_per_us() {
        let mut w = RateWindow::new(Duration::from_us(100));
        let now = Cycle::ZERO + Duration::from_us(50);
        w.record(now, 200);
        assert_eq!(w.rate_per_us(now), 2.0);
    }

    #[test]
    #[should_panic]
    fn nan_sample_panics() {
        Samples::new().push(f64::NAN);
    }
}
