//! Streaming statistics used by the experiment harness: exact percentiles
//! for small cells, a bounded-memory quantile sketch (p50/p99/p999) for
//! million-job cluster runs, geometric means, and rate windows.

use crate::time::Duration;

/// Collects scalar samples and answers order statistics.
///
/// Samples are kept (they are small: one `f64` per completed job), so
/// percentiles are exact rather than approximated.
///
/// # Examples
///
/// ```
/// use sim_core::stats::Samples;
///
/// let mut s = Samples::new();
/// for v in 1..=100 {
///     s.push(v as f64);
/// }
/// assert_eq!(s.percentile(0.99), 99.0);
/// assert_eq!(s.percentile(0.50), 50.0);
/// assert_eq!(s.len(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN sample");
        self.values.push(v);
        self.sorted = false;
    }

    /// Adds a duration sample in microseconds.
    pub fn push_duration(&mut self, d: Duration) {
        self.push(d.as_us_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Exact `q`-quantile (`q` in `[0,1]`) using the nearest-rank method,
    /// `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
            self.sorted = true;
        }
        let rank = ((q * self.values.len() as f64).ceil() as usize).max(1) - 1;
        self.values[rank.min(self.values.len() - 1)]
    }

    /// Maximum sample, `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

/// Per-decade growth factor of the [`StreamingQuantiles`] bucket ladder.
///
/// Bucket boundaries grow geometrically by this factor, so any reported
/// quantile is within `(GROWTH - 1) / 2` (0.5%) relative error of the exact
/// nearest-rank answer over the same stream.
const QUANTILE_GROWTH: f64 = 1.01;

/// Smallest positive magnitude [`StreamingQuantiles`] resolves (in whatever
/// unit the caller pushes; 1e-3 µs = 1 ns for latency streams). Smaller
/// positive samples fold into the first bucket.
const QUANTILE_FLOOR: f64 = 1e-3;

/// Bounded-memory streaming quantile sketch with a p999 tier.
///
/// [`Samples`] keeps every value, which is exact but O(n) memory — fine for
/// 128-job cells, unaffordable for million-job cluster runs. This sketch
/// instead counts samples in geometrically spaced buckets (growth factor
/// 1.01), so any quantile it reports is within 0.5% relative error of the
/// exact nearest-rank statistic while memory stays bounded by the dynamic
/// range (a few thousand `u64` counters), independent of stream length.
///
/// Sketches over disjoint streams [`merge`](StreamingQuantiles::merge)
/// losslessly, which is what lets per-device workers run in parallel and
/// still produce an order-independent cluster-wide report.
///
/// # Examples
///
/// ```
/// use sim_core::stats::StreamingQuantiles;
///
/// let mut q = StreamingQuantiles::new();
/// for v in 1..=1000 {
///     q.push(v as f64);
/// }
/// assert!((q.p50() - 500.0).abs() / 500.0 < 0.01);
/// assert!((q.p999() - 999.0).abs() / 999.0 < 0.01);
/// assert_eq!(q.len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingQuantiles {
    /// Bucket `i` counts samples in `[FLOOR * G^i, FLOOR * G^(i+1))`; the
    /// vector grows on demand to the highest bucket seen.
    counts: Vec<u64>,
    /// Samples that were exactly zero (reported back as exactly zero).
    zeros: u64,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingQuantiles {
    fn default() -> Self {
        StreamingQuantiles {
            counts: Vec::new(),
            zeros: 0,
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingQuantiles {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        StreamingQuantiles::default()
    }

    fn bucket_of(v: f64) -> usize {
        if v < QUANTILE_FLOOR {
            return 0;
        }
        ((v / QUANTILE_FLOOR).ln() / QUANTILE_GROWTH.ln()).floor() as usize
    }

    /// Geometric midpoint of bucket `i`, the sketch's representative for
    /// every sample that landed there.
    fn representative(&self, i: usize) -> f64 {
        let mid = QUANTILE_FLOOR * QUANTILE_GROWTH.powf(i as f64 + 0.5);
        mid.clamp(self.min, self.max)
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN, infinite, or negative.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample");
        assert!(v >= 0.0, "negative sample");
        if v == 0.0 {
            self.zeros += 1;
        } else {
            let b = Self::bucket_of(v);
            if b >= self.counts.len() {
                self.counts.resize(b + 1, 0);
            }
            self.counts[b] += 1;
        }
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds a duration sample in microseconds.
    pub fn push_duration(&mut self, d: Duration) {
        self.push(d.as_us_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean, `0.0` when empty (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum / self.total as f64
    }

    /// Smallest sample (exact), `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.min
    }

    /// Largest sample (exact), `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.max
    }

    /// Approximate `q`-quantile (`q` in `[0,1]`), nearest-rank convention
    /// matching [`Samples::percentile`]; `0.0` when empty. Within 0.5%
    /// relative error of the exact answer.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1) - 1;
        if rank < self.zeros {
            return 0.0;
        }
        let mut cum = self.zeros;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if rank < cum {
                return self.representative(i);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail tier fleet-scale SLO reporting keys on.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Folds another sketch into this one. Counts — and therefore every
    /// quantile, `len`, `min` and `max` — come out identical to pushing both
    /// streams into one sketch in any order. The `sum` behind `mean` is
    /// floating-point and accumulates in merge order, so callers that need
    /// bit-identical reports must merge in a deterministic order (the
    /// cluster layer merges per-device sketches in device-index order).
    pub fn merge(&mut self, other: &StreamingQuantiles) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.zeros += other.zeros;
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The sketch's raw state `(bucket_counts, zeros, sum, min, max)`, for
    /// checkpoint serialization. `min`/`max` are the *internal* sentinels
    /// (`+inf`/`-inf` when empty), not the `0.0` the accessors report, so a
    /// round trip through [`StreamingQuantiles::from_raw_parts`] is exact.
    pub fn raw_parts(&self) -> (&[u64], u64, f64, f64, f64) {
        (&self.counts, self.zeros, self.sum, self.min, self.max)
    }

    /// Rebuilds a sketch from [`StreamingQuantiles::raw_parts`] state; the
    /// sample count is recomputed from the bucket counts.
    pub fn from_raw_parts(counts: Vec<u64>, zeros: u64, sum: f64, min: f64, max: f64) -> Self {
        let total = zeros + counts.iter().sum::<u64>();
        StreamingQuantiles { counts, zeros, total, sum, min, max }
    }
}

/// Geometric mean of strictly positive values.
///
/// Values `<= 0` are clamped to `epsilon` (1e-9) so a single zero ratio (a
/// scheduler completing no jobs at all, as BAY does on IPV6 in the paper)
/// drags the geomean down without poisoning it into zero, mirroring how such
/// results are conventionally reported.
///
/// Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// use sim_core::stats::geomean;
///
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// assert_eq!(geomean(&[]), 0.0);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A sliding-window event-rate meter.
///
/// Tracks how many events occurred in the last `window` of simulated time;
/// this is exactly the "WG completion rate" counter the paper adds to the
/// GPU (Section 4.1.1). Old events are evicted lazily on read.
#[derive(Debug, Clone)]
pub struct RateWindow {
    window: Duration,
    events: std::collections::VecDeque<(crate::time::Cycle, u64)>,
    total: u64,
}

impl RateWindow {
    /// Creates a meter with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "rate window must be non-zero");
        RateWindow {
            window,
            events: std::collections::VecDeque::new(),
            total: 0,
        }
    }

    /// Records `count` events at time `now`.
    pub fn record(&mut self, now: crate::time::Cycle, count: u64) {
        self.evict(now);
        self.events.push_back((now, count));
        self.total += count;
    }

    /// Events per microsecond over the window ending at `now`.
    pub fn rate_per_us(&mut self, now: crate::time::Cycle) -> f64 {
        self.evict(now);
        self.total as f64 / self.window.as_us_f64()
    }

    /// Raw event count in the window ending at `now`.
    pub fn count(&mut self, now: crate::time::Cycle) -> u64 {
        self.evict(now);
        self.total
    }

    fn evict(&mut self, now: crate::time::Cycle) {
        let cutoff = now - self.window; // saturating
        while let Some(&(t, c)) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
                self.total -= c;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycle;

    #[test]
    fn percentile_nearest_rank() {
        let mut s = Samples::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.push(v);
        }
        assert_eq!(s.percentile(0.25), 10.0);
        assert_eq!(s.percentile(0.5), 20.0);
        assert_eq!(s.percentile(0.99), 40.0);
        assert_eq!(s.percentile(1.0), 40.0);
    }

    #[test]
    fn percentile_after_interleaved_pushes() {
        let mut s = Samples::new();
        s.push(5.0);
        assert_eq!(s.percentile(1.0), 5.0);
        s.push(1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[0.0, 1.0]) < 1e-3);
    }

    #[test]
    fn rate_window_evicts_old_events() {
        let mut w = RateWindow::new(Duration::from_us(100));
        w.record(Cycle::from_cycles(0), 10);
        assert_eq!(w.count(Cycle::from_cycles(0)), 10);
        // Still inside the window.
        assert_eq!(w.count(Cycle::ZERO + Duration::from_us(100)), 10);
        // Now outside.
        assert_eq!(w.count(Cycle::ZERO + Duration::from_us(201)), 0);
    }

    #[test]
    fn rate_window_rate_per_us() {
        let mut w = RateWindow::new(Duration::from_us(100));
        let now = Cycle::ZERO + Duration::from_us(50);
        w.record(now, 200);
        assert_eq!(w.rate_per_us(now), 2.0);
    }

    #[test]
    #[should_panic]
    fn nan_sample_panics() {
        Samples::new().push(f64::NAN);
    }

    /// Pushes the same seeded stream into an exact [`Samples`] and a
    /// [`StreamingQuantiles`] sketch and asserts every tier (p50..p999)
    /// agrees within the sketch's 0.5% bucket-width guarantee (1% margin).
    fn assert_sketch_tracks_exact(values: &[f64]) {
        let mut exact = Samples::new();
        let mut sketch = StreamingQuantiles::new();
        for &v in values {
            exact.push(v);
            sketch.push(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let e = exact.percentile(q);
            let s = sketch.quantile(q);
            let rel = (s - e).abs() / e.max(1e-12);
            assert!(rel < 0.01, "q={q}: sketch {s} vs exact {e} (rel {rel})");
        }
        assert_eq!(sketch.len(), values.len());
        assert_eq!(sketch.max(), exact.max());
        let mean_rel = (sketch.mean() - exact.mean()).abs() / exact.mean().max(1e-12);
        assert!(mean_rel < 1e-9, "mean is exact, not bucketed");
    }

    #[test]
    fn streaming_quantiles_track_exact_on_exponential_data() {
        // Exponential tails are the latency shape the cluster reports on.
        let mut rng = crate::rng::SimRng::seed_from(7);
        let values: Vec<f64> = (0..20_000)
            .map(|_| -250.0 * (1.0 - rng.uniform_f64()).max(1e-15).ln())
            .collect();
        assert_sketch_tracks_exact(&values);
    }

    #[test]
    fn streaming_quantiles_track_exact_on_uniform_data() {
        let mut rng = crate::rng::SimRng::seed_from(21);
        let values: Vec<f64> = (0..20_000).map(|_| 5.0 + 995.0 * rng.uniform_f64()).collect();
        assert_sketch_tracks_exact(&values);
    }

    #[test]
    fn streaming_quantile_tiers_are_monotone() {
        let mut rng = crate::rng::SimRng::seed_from(3);
        let mut q = StreamingQuantiles::new();
        for _ in 0..10_000 {
            q.push(rng.uniform_f64() * 1e6);
        }
        assert!(q.p50() <= q.p99());
        assert!(q.p99() <= q.p999());
        assert!(q.p999() <= q.max());
        assert!(q.min() <= q.p50());
    }

    #[test]
    fn streaming_quantiles_merge_matches_single_stream_counts() {
        let mut rng = crate::rng::SimRng::seed_from(11);
        let values: Vec<f64> = (0..4_000).map(|_| rng.uniform_f64() * 300.0).collect();
        let mut whole = StreamingQuantiles::new();
        let mut left = StreamingQuantiles::new();
        let mut right = StreamingQuantiles::new();
        for (i, &v) in values.iter().enumerate() {
            whole.push(v);
            if i % 2 == 0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        // Merge in either order: counts, quantiles and extrema are identical.
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(lr.quantile(q), whole.quantile(q));
            assert_eq!(rl.quantile(q), whole.quantile(q));
        }
        assert_eq!(lr.len(), whole.len());
        assert_eq!(lr.min(), whole.min());
        assert_eq!(lr.max(), whole.max());
        // The mean reassociates under merge; equal to ~1 ulp, not bitwise.
        assert!((lr.mean() - whole.mean()).abs() / whole.mean() < 1e-12);
    }

    #[test]
    fn streaming_quantiles_handle_zeros_and_empty() {
        let empty = StreamingQuantiles::new();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);

        let mut q = StreamingQuantiles::new();
        for _ in 0..90 {
            q.push(0.0);
        }
        for _ in 0..10 {
            q.push(50.0);
        }
        assert_eq!(q.quantile(0.5), 0.0);
        assert_eq!(q.min(), 0.0);
        assert!((q.quantile(0.99) - 50.0).abs() / 50.0 < 0.01);
    }

    #[test]
    fn streaming_quantiles_are_deterministic_and_comparable() {
        let build = || {
            let mut q = StreamingQuantiles::new();
            let mut rng = crate::rng::SimRng::seed_from(5);
            for _ in 0..1_000 {
                q.push(rng.uniform_f64() * 1e4);
            }
            q
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic = "negative sample"]
    fn streaming_quantiles_reject_negative_samples() {
        StreamingQuantiles::new().push(-1.0);
    }

    #[test]
    #[should_panic = "non-finite sample"]
    fn streaming_quantiles_reject_nan() {
        StreamingQuantiles::new().push(f64::NAN);
    }
}
