//! Simulation time expressed in GPU core cycles.
//!
//! The simulated GPU runs at 1.5 GHz ([`CYCLES_PER_US`] = 1500), matching the
//! paper's Table 2 configuration. All host-side overheads quoted by the paper
//! are whole microseconds, so a cycle granularity keeps every latency exact.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Number of GPU cycles per microsecond (1.5 GHz core clock).
pub const CYCLES_PER_US: u64 = 1_500;

/// Number of GPU cycles per millisecond.
pub const CYCLES_PER_MS: u64 = CYCLES_PER_US * 1_000;

/// Number of GPU cycles per second.
pub const CYCLES_PER_SEC: u64 = CYCLES_PER_MS * 1_000;

/// An absolute point in simulated time, measured in GPU cycles since reset.
///
/// `Cycle` is an absolute instant; [`Duration`] is a span. Mixing them up is a
/// compile error, which prevents the classic deadline-arithmetic bugs
/// (`deadline` is always stored as a `Duration` relative to job arrival).
///
/// # Examples
///
/// ```
/// use sim_core::time::{Cycle, Duration};
///
/// let start = Cycle::ZERO;
/// let later = start + Duration::from_us(40);
/// assert_eq!(later.as_cycles(), 60_000);
/// assert_eq!(later - start, Duration::from_us(40));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

/// A span of simulated time, measured in GPU cycles.
///
/// # Examples
///
/// ```
/// use sim_core::time::Duration;
///
/// let d = Duration::from_us(3) + Duration::from_cycles(750);
/// assert_eq!(d.as_us_f64(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Cycle {
    /// The simulation epoch (time zero).
    pub const ZERO: Cycle = Cycle(0);

    /// The greatest representable instant; useful as an "infinite" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates an instant at `cycles` after reset.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_cycles(self) -> u64 {
        self.0
    }

    /// Converts to fractional microseconds (for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / CYCLES_PER_US as f64
    }

    /// Converts to fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / CYCLES_PER_MS as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<Cycle> {
        self.0.checked_add(d.0).map(Cycle)
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// The greatest representable span; used as an "unschedulable" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a span of `cycles` GPU cycles.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        Duration(cycles)
    }

    /// Creates a span of `us` microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * CYCLES_PER_US)
    }

    /// Creates a span of `ms` milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * CYCLES_PER_MS)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "duration must be non-negative");
        Duration((us * CYCLES_PER_US as f64).round() as u64)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_cycles(self) -> u64 {
        self.0
    }

    /// Converts to fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / CYCLES_PER_US as f64
    }

    /// Converts to fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / CYCLES_PER_MS as f64
    }

    /// Converts to fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / CYCLES_PER_SEC as f64
    }

    /// `true` if the span is zero cycles.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: Duration) -> Duration {
        Duration(self.0.saturating_add(other.0))
    }

    /// Scales the span by a non-negative factor, rounding to nearest cycle
    /// and saturating at [`Duration::MAX`].
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Duration {
        debug_assert!(factor >= 0.0);
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(scaled.round() as u64)
        }
    }

    /// Returns the larger of the two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Returns the smaller of the two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add<Duration> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Duration) -> Cycle {
        Cycle(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Duration) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for Cycle {
    type Output = Duration;
    /// Span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        debug_assert!(self.0 >= rhs.0);
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = f64;
    /// Ratio of two spans, e.g. `elapsed / deadline`.
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Rem for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= CYCLES_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else {
            write!(f, "{:.3}us", self.as_us_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_duration_arithmetic_round_trips() {
        let t0 = Cycle::from_cycles(100);
        let d = Duration::from_us(2);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn microsecond_conversion_is_exact() {
        assert_eq!(Duration::from_us(40).as_cycles(), 60_000);
        assert_eq!(Duration::from_ms(7).as_cycles(), 10_500_000);
        assert_eq!(Duration::from_ms(7).as_ms_f64(), 7.0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Cycle::from_cycles(10);
        let late = Cycle::from_cycles(20);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_cycles(10));
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        assert_eq!(Duration::from_cycles(10).mul_f64(1.26), Duration::from_cycles(13));
        assert_eq!(Duration::MAX.mul_f64(2.0), Duration::MAX);
        assert_eq!(Duration::from_cycles(10).mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn duration_ratio() {
        let a = Duration::from_us(1);
        let b = Duration::from_us(4);
        assert_eq!(a / b, 0.25);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_us(40).to_string(), "40.000us");
        assert_eq!(Duration::from_ms(7).to_string(), "7.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [Duration::from_us(1), Duration::from_us(2)].into_iter().sum();
        assert_eq!(total, Duration::from_us(3));
    }
}
