//! Minimal JSON helpers: string escaping for emitters and a strict
//! syntax validator for smoke tests.
//!
//! The workspace is std-only (no serde), so trace writers hand-roll their
//! JSON. [`escape_into`]/[`escaped`] implement RFC 8259 string escaping, and
//! [`validate`] is a small recursive-descent syntax checker used by tests and
//! `tools/tier1.sh` to prove emitted trace files parse without shelling out
//! to an external JSON tool.

/// Append `s` to `out` with JSON string escaping applied (no surrounding
/// quotes). Escapes `"`, `\`, and all control characters below U+0020.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh `String` (still without quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Why a document failed [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth [`validate`] accepts before giving up; deep enough
/// for any trace file we emit, shallow enough to never blow the stack.
const MAX_DEPTH: usize = 256;

/// Check that `s` is one syntactically valid JSON document (with nothing but
/// whitespace after it). Values are not materialized — this is a syntax
/// check, not a parser.
pub fn validate(s: &str) -> Result<(), JsonError> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(())
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError { at, message: message.to_string() }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(_) => Err(err(*pos, "expected a JSON value")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), JsonError> {
    if b[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(())
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key string"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "bad escape sequence")),
                }
            }
            c if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(err(*pos, "expected digits in number"));
    }
    // JSON forbids leading zeros on multi-digit integer parts.
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return Err(err(int_start, "leading zero in number"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(err(*pos, "expected digits after decimal point"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(err(*pos, "expected digits in exponent"));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escaped(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escaped(r"a\b"), r"a\\b");
        assert_eq!(escaped("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escaped("\u{01}"), "\\u0001");
        assert_eq!(escaped("plain"), "plain");
    }

    #[test]
    fn escaped_strings_validate() {
        let nasty = "quote\" slash\\ newline\n ctrl\u{02} unicode \u{2603}";
        let doc = format!("{{\"k\":\"{}\"}}", escaped(nasty));
        validate(&doc).expect("escaped output must be valid JSON");
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "0",
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  [ 1 , 2 ]  ",
            r#""é""#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\x\"",
            "[1] trailing",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }

    #[test]
    fn depth_cap_rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(validate(&deep).is_err());
    }
}
