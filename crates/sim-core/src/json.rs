//! Minimal JSON helpers: string escaping for emitters, a strict syntax
//! validator for smoke tests, and a small value parser for tools that must
//! read their own emitted documents back.
//!
//! The workspace is std-only (no serde), so trace writers hand-roll their
//! JSON. [`escape_into`]/[`escaped`] implement RFC 8259 string escaping,
//! [`validate`] is a small recursive-descent syntax checker used by tests and
//! `tools/tier1.sh` to prove emitted trace files parse without shelling out
//! to an external JSON tool, and [`parse`] materializes a document into a
//! [`Value`] tree (used e.g. to merge `results/BENCH_cluster.json` across
//! the cluster and chaos sweeps without clobbering each other's cells).

/// Append `s` to `out` with JSON string escaping applied (no surrounding
/// quotes). Escapes `"`, `\`, and all control characters below U+0020.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh `String` (still without quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Why a document failed [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth [`validate`] accepts before giving up; deep enough
/// for any trace file we emit, shallow enough to never blow the stack.
const MAX_DEPTH: usize = 256;

/// Check that `s` is one syntactically valid JSON document (with nothing but
/// whitespace after it). Values are not materialized — this is a syntax
/// check, not a parser.
pub fn validate(s: &str) -> Result<(), JsonError> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(())
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError { at, message: message.to_string() }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(_) => Err(err(*pos, "expected a JSON value")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), JsonError> {
    if b[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(())
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key string"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "bad escape sequence")),
                }
            }
            c if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(err(*pos, "expected digits in number"));
    }
    // JSON forbids leading zeros on multi-digit integer parts.
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return Err(err(int_start, "leading zero in number"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(err(*pos, "expected digits after decimal point"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(err(*pos, "expected digits in exponent"));
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

/// A materialized JSON value, produced by [`parse`].
///
/// Objects keep their key order as a `Vec` of pairs (no hashing, duplicate
/// keys preserved) — plenty for the small config/result documents this
/// workspace reads back, and deterministic to re-emit.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// `[ ... ]`.
    Array(Vec<Value>),
    /// `{ ... }`, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document into a [`Value`] tree. Accepts exactly the
/// grammar [`validate`] accepts (same depth cap, same strictness); `\uXXXX`
/// escapes are decoded, including surrogate pairs.
pub fn parse(s: &str) -> Result<Value, JsonError> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    let v = pvalue(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(v)
}

fn pvalue(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => pobject(b, pos, depth),
        Some(b'[') => parray(b, pos, depth),
        Some(b'"') => pstring(b, pos).map(Value::String),
        Some(b't') => literal(b, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(b, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(b, pos, b"null").map(|()| Value::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => pnumber(b, pos),
        Some(_) => Err(err(*pos, "expected a JSON value")),
    }
}

fn pobject(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    let mut pairs = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key string"));
        }
        let key = pstring(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        pairs.push((key, pvalue(b, pos, depth + 1)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parray(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(pvalue(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn hex4(b: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let mut code = 0u32;
    for _ in 0..4 {
        match b.get(*pos) {
            Some(h) if h.is_ascii_hexdigit() => {
                code = code * 16 + (*h as char).to_digit(16).expect("hex digit");
                *pos += 1;
            }
            _ => return Err(err(*pos, "bad \\u escape")),
        }
    }
    Ok(code)
}

fn pstring(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    let mut out = String::new();
    *pos += 1; // consume opening '"'
    let mut run_start = *pos;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                out.push_str(str_run(b, run_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(str_run(b, run_start, *pos)?);
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = hex4(b, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require the paired \uXXXX low half.
                            if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                return Err(err(*pos, "unpaired surrogate in \\u escape"));
                            }
                            *pos += 2;
                            let lo = hex4(b, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(err(*pos, "invalid low surrogate in \\u escape"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(err(*pos, "unpaired surrogate in \\u escape"));
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(ch) => out.push(ch),
                            None => return Err(err(*pos, "invalid \\u code point")),
                        }
                        run_start = *pos;
                        continue;
                    }
                    _ => return Err(err(*pos, "bad escape sequence")),
                }
                *pos += 1;
                run_start = *pos;
            }
            c if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

/// Slice the unescaped byte run `[start, end)` as UTF-8.
fn str_run(b: &[u8], start: usize, end: usize) -> Result<&str, JsonError> {
    std::str::from_utf8(&b[start..end]).map_err(|_| err(start, "invalid UTF-8 in string"))
}

fn pnumber(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    number(b, pos)?;
    let text = std::str::from_utf8(&b[start..*pos]).expect("number bytes are ASCII");
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| err(start, "number out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escaped(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escaped(r"a\b"), r"a\\b");
        assert_eq!(escaped("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escaped("\u{01}"), "\\u0001");
        assert_eq!(escaped("plain"), "plain");
    }

    #[test]
    fn escaped_strings_validate() {
        let nasty = "quote\" slash\\ newline\n ctrl\u{02} unicode \u{2603}";
        let doc = format!("{{\"k\":\"{}\"}}", escaped(nasty));
        validate(&doc).expect("escaped output must be valid JSON");
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "0",
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  [ 1 , 2 ]  ",
            r#""é""#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\x\"",
            "[1] trailing",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }

    #[test]
    fn depth_cap_rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(validate(&deep).is_err());
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn parse_materializes_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,{"b":null}],"c":"x","d":true}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        // Missing keys and wrong-type accessors are all None.
        assert_eq!(v.get("zzz"), None);
        assert_eq!(v.get("a").and_then(Value::as_str), None);
    }

    #[test]
    fn parse_decodes_escapes_and_surrogate_pairs() {
        let v = parse(r#""q\" b\\ n\n snow\u2603 clef\ud834\udd1e raw☃""#).unwrap();
        assert_eq!(v.as_str(), Some("q\" b\\ n\n snow\u{2603} clef\u{1d11e} raw\u{2603}"));
        for bad in [r#""\ud834""#, r#""\ud834A""#, r#""\udd1e""#] {
            assert!(parse(bad).is_err(), "{bad:?} wrongly accepted");
        }
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "01", "1.", "[1] trailing"] {
            assert!(parse(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }

    #[test]
    fn parse_round_trips_escaped_strings() {
        let nasty = "quote\" slash\\ newline\n ctrl\u{02} unicode \u{2603}";
        let doc = format!("{{\"k\":\"{}\"}}", escaped(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(nasty));
    }
}
