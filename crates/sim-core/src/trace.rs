//! Time-series tracing for Figure-10 style plots (predicted execution time
//! and priority of a job over its lifetime).

use crate::time::Cycle;

/// One sampled point of a traced quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Simulation time of the sample.
    pub at: Cycle,
    /// Sampled value (units depend on the series).
    pub value: f64,
}

/// A named time series with a bounded number of points.
///
/// The bound guards against a runaway tracer in a long simulation; once full,
/// further samples are dropped (the interesting dynamics are at the start of
/// a job's life anyway).
///
/// # Examples
///
/// ```
/// use sim_core::trace::TraceSeries;
/// use sim_core::time::Cycle;
///
/// let mut s = TraceSeries::new("priority", 4);
/// s.sample(Cycle::from_cycles(1), 10.0);
/// s.sample(Cycle::from_cycles(2), 20.0);
/// assert_eq!(s.points().len(), 2);
/// assert_eq!(s.name(), "priority");
/// ```
#[derive(Debug, Clone)]
pub struct TraceSeries {
    name: String,
    points: Vec<TracePoint>,
    capacity: usize,
    dropped: u64,
}

impl TraceSeries {
    /// Creates an empty series that keeps at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceSeries {
            name: name.into(),
            points: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Series name (e.g. `"predicted_exec_us"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a sample; dropped (and counted) when the series is full.
    pub fn sample(&mut self, at: Cycle, value: f64) {
        if self.points.len() < self.capacity {
            self.points.push(TracePoint { at, value });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded points, in sampling order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// `true` if the capacity has been reached.
    pub fn is_full(&self) -> bool {
        self.points.len() >= self.capacity
    }

    /// Number of samples discarded because the series was already full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_enforced() {
        let mut s = TraceSeries::new("x", 2);
        for i in 0..5 {
            s.sample(Cycle::from_cycles(i), i as f64);
        }
        assert_eq!(s.points().len(), 2);
        assert!(s.is_full());
        assert_eq!(s.points()[1].value, 1.0);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        TraceSeries::new("x", 0);
    }
}
