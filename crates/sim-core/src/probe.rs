//! Generic observer/probe infrastructure.
//!
//! A [`ProbeHub`] is a broadcast point the simulator fires typed events
//! through. With no observer attached it is a no-op: [`ProbeHub::emit_with`]
//! takes a closure so the event payload is never even constructed, and the
//! hot-path cost collapses to one `Vec::is_empty` check. Crucially the hub
//! never schedules simulator events or mutates simulator state, so an
//! attached observer cannot perturb results — the same determinism contract
//! as `FaultPlan::none()`.
//!
//! The event type `E` is chosen by the embedding simulator (e.g. gpu-sim's
//! `ProbeEvent`); this module stays fully generic so any discrete-event model
//! built on `sim-core` can reuse it.

use std::sync::{Arc, Mutex};

use crate::time::Cycle;

/// A sink for typed probe events fired by a simulation.
///
/// Observers receive every event by shared reference, in simulation order.
/// They must not assume anything about wall-clock time: `at` is the
/// simulated timestamp of the event.
pub trait Observer<E> {
    /// Called for every event fired through the hub this observer is
    /// attached to.
    fn on_event(&mut self, at: Cycle, event: &E);
}

/// Blanket impl so a harness can keep an `Arc<Mutex<Sampler>>` clone for
/// itself, attach another clone to the simulation, and read the collected
/// data back after the run (the same pattern the old fig10 `SharedTrace`
/// used).
impl<E, T: Observer<E> + ?Sized> Observer<E> for Arc<Mutex<T>> {
    fn on_event(&mut self, at: Cycle, event: &E) {
        self.lock().expect("observer mutex poisoned").on_event(at, event);
    }
}

/// Broadcast hub for probe events of type `E`.
///
/// Cheap to construct and cheap to carry around unattached; the simulator
/// embeds one and fires events through it unconditionally.
pub struct ProbeHub<E> {
    observers: Vec<Box<dyn Observer<E> + Send>>,
}

impl<E> std::fmt::Debug for ProbeHub<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeHub")
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<E> Default for ProbeHub<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ProbeHub<E> {
    /// An empty hub with no observers: every emit is a no-op.
    pub fn new() -> Self {
        Self { observers: Vec::new() }
    }

    /// Attach an observer. Events fired after this point are delivered to it
    /// (in attach order, after any previously attached observers).
    pub fn attach(&mut self, observer: Box<dyn Observer<E> + Send>) {
        self.observers.push(observer);
    }

    /// Whether at least one observer is attached. Callers may use this to
    /// skip building expensive snapshot payloads.
    pub fn is_active(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True when no observer is attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    /// Fire an already-constructed event to all observers.
    pub fn emit(&mut self, at: Cycle, event: E) {
        for obs in &mut self.observers {
            obs.on_event(at, &event);
        }
    }

    /// Fire an event constructed lazily — the closure runs only if at least
    /// one observer is attached, so detached hot paths pay nothing beyond
    /// the emptiness check.
    pub fn emit_with(&mut self, at: Cycle, make: impl FnOnce() -> E) {
        if self.observers.is_empty() {
            return;
        }
        let event = make();
        for obs in &mut self.observers {
            obs.on_event(at, &event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[derive(Default)]
    struct Collector {
        seen: Vec<(Cycle, u32)>,
    }

    impl Observer<u32> for Collector {
        fn on_event(&mut self, at: Cycle, event: &u32) {
            self.seen.push((at, *event));
        }
    }

    #[test]
    fn detached_hub_never_builds_the_event() {
        let mut hub: ProbeHub<u32> = ProbeHub::new();
        assert!(!hub.is_active());
        let mut built = false;
        hub.emit_with(Cycle::ZERO, || {
            built = true;
            7
        });
        assert!(!built, "closure must not run with no observers");
    }

    #[test]
    fn attached_observers_see_events_in_order() {
        let shared = Arc::new(Mutex::new(Collector::default()));
        let mut hub: ProbeHub<u32> = ProbeHub::new();
        hub.attach(Box::new(shared.clone()));
        assert!(hub.is_active());
        assert_eq!(hub.len(), 1);
        let t1 = Cycle::ZERO + Duration::from_us(1);
        hub.emit(Cycle::ZERO, 1);
        hub.emit_with(t1, || 2);
        let got = shared.lock().unwrap().seen.clone();
        assert_eq!(got, vec![(Cycle::ZERO, 1), (t1, 2)]);
    }

    #[test]
    fn multiple_observers_all_receive() {
        let a = Arc::new(Mutex::new(Collector::default()));
        let b = Arc::new(Mutex::new(Collector::default()));
        let mut hub: ProbeHub<u32> = ProbeHub::new();
        hub.attach(Box::new(a.clone()));
        hub.attach(Box::new(b.clone()));
        hub.emit(Cycle::ZERO, 42);
        assert_eq!(a.lock().unwrap().seen.len(), 1);
        assert_eq!(b.lock().unwrap().seen.len(), 1);
    }
}
